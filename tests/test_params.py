"""Tests for the Figure-3 latency tables and paper constants."""

import pytest

from repro.params import (
    BASE_L2_ASSOC,
    BASE_L2_SIZE,
    L1_ASSOC,
    L1_SIZE,
    LINE_SIZE,
    MP_NODES,
    SERVERS_PER_CPU,
    IntegrationLevel,
    L2Technology,
    LatencyTable,
    MissKind,
    figure3_rows,
    latencies,
)


class TestFigure2Constants:
    def test_base_system_parameters(self):
        assert LINE_SIZE == 64
        assert L1_SIZE == 64 * 1024 and L1_ASSOC == 2
        assert BASE_L2_SIZE == 8 * 1024 * 1024 and BASE_L2_ASSOC == 1
        assert MP_NODES == 8
        assert SERVERS_PER_CPU == 8


class TestFigure3:
    def test_conservative_base_row(self):
        t = latencies(IntegrationLevel.CONSERVATIVE_BASE)
        assert (t.l2_hit, t.local, t.remote_clean, t.remote_dirty) == (30, 150, 225, 325)

    def test_base_direct_mapped_row(self):
        t = latencies(IntegrationLevel.BASE, l2_assoc=1)
        assert (t.l2_hit, t.local, t.remote_clean, t.remote_dirty) == (25, 100, 175, 275)

    def test_base_associative_row(self):
        t = latencies(IntegrationLevel.BASE, l2_assoc=4)
        assert t.l2_hit == 30  # external set selection penalty

    def test_integrated_sram_row(self):
        t = latencies(IntegrationLevel.L2, l2_technology=L2Technology.ON_CHIP_SRAM)
        assert (t.l2_hit, t.local, t.remote_clean, t.remote_dirty) == (15, 100, 175, 275)

    def test_integrated_dram_row(self):
        t = latencies(IntegrationLevel.L2, l2_technology=L2Technology.ON_CHIP_DRAM)
        assert t.l2_hit == 25

    def test_l2_mc_row_penalizes_remote_fetch_only(self):
        t = latencies(IntegrationLevel.L2_MC)
        assert (t.l2_hit, t.local, t.remote_clean, t.remote_dirty) == (15, 75, 225, 275)
        assert t.remote_upgrade == 175  # data-less: Base round-trip

    def test_full_row(self):
        t = latencies(IntegrationLevel.FULL)
        assert (t.l2_hit, t.local, t.remote_clean, t.remote_dirty) == (15, 75, 150, 200)

    def test_section_2_3_reduction_ratios(self):
        base = latencies(IntegrationLevel.BASE, l2_assoc=1)
        full = latencies(IntegrationLevel.FULL)
        assert base.l2_hit / full.l2_hit == pytest.approx(1.67, abs=0.01)
        assert base.local / full.local == pytest.approx(1.33, abs=0.01)
        assert base.remote_clean / full.remote_clean == pytest.approx(1.17, abs=0.01)
        assert base.remote_dirty / full.remote_dirty == pytest.approx(1.38, abs=0.01)

    def test_figure3_rows_complete_and_ordered(self):
        rows = figure3_rows()
        assert len(rows) == 7
        assert rows[0][0].startswith("Conservative")
        assert rows[-1][0].endswith("integrated")

    def test_upgrade_defaults_to_remote_clean(self):
        t = LatencyTable(10, 20, 30, 40)
        assert t.remote_upgrade == 30

    def test_dram_at_full_integration_keeps_upgrade(self):
        t = latencies(IntegrationLevel.FULL, l2_technology=L2Technology.ON_CHIP_DRAM)
        assert t.l2_hit == 25
        assert t.remote_upgrade == 150


class TestLatencyLookup:
    def test_for_miss(self):
        t = latencies(IntegrationLevel.BASE, l2_assoc=1)
        assert t.for_miss(MissKind.LOCAL) == 100
        assert t.for_miss(MissKind.REMOTE_CLEAN) == 175
        assert t.for_miss(MissKind.REMOTE_DIRTY) == 275

    def test_for_miss_rejects_non_miss(self):
        t = latencies(IntegrationLevel.BASE)
        with pytest.raises(ValueError):
            t.for_miss("l2hit")


class TestIntegrationLevelProperties:
    @pytest.mark.parametrize("level,l2,mc,cc", [
        (IntegrationLevel.CONSERVATIVE_BASE, False, False, False),
        (IntegrationLevel.BASE, False, False, False),
        (IntegrationLevel.L2, True, False, False),
        (IntegrationLevel.L2_MC, True, True, False),
        (IntegrationLevel.FULL, True, True, True),
    ])
    def test_on_chip_flags(self, level, l2, mc, cc):
        assert level.l2_on_chip == l2
        assert level.mc_on_chip == mc
        assert level.cc_on_chip == cc
