"""Property-based tests for SetAssocCache and the L1/L2 hierarchy.

These complement the stateful machine in ``test_cache_stateful.py``
with direct universally-quantified properties over arbitrary access
sequences:

* **LRU eviction order** — every victim is exactly the
  least-recently-used line of its set at eviction time;
* **writeback dirtiness** — a replacement writes back iff the victim
  was written (and not cleaned) since it last entered the cache;
* **L2→L1 inclusion** — after any demand access sequence through
  :class:`NodeCaches`, every line resident in an L1 is resident in
  the L2.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsys.cache import SetAssocCache
from repro.memsys.hierarchy import NodeCaches

# Small geometry so short sequences generate heavy eviction traffic.
NUM_SETS = 4
ASSOC = 2
LINE = 64

ACCESSES = st.lists(
    st.tuples(st.integers(0, 31), st.booleans()),  # (line, write)
    min_size=1, max_size=120,
)


def fresh_cache() -> SetAssocCache:
    return SetAssocCache(NUM_SETS * ASSOC * LINE, ASSOC, LINE)


@given(ACCESSES)
@settings(max_examples=120, deadline=None)
def test_victim_is_always_the_lru_line(accesses):
    """Whenever an access evicts, the victim must be the line of that
    set that was touched longest ago (fills and hits both refresh
    recency)."""
    cache = fresh_cache()
    recency = {i: [] for i in range(NUM_SETS)}  # MRU-first per set
    for line, write in accesses:
        order = recency[line % NUM_SETS]
        result = cache.access(line, write)
        if result.hit:
            assert line in order
            order.remove(line)
        else:
            if len(order) == ASSOC:
                assert result.victim == order[-1]
                assert not cache.contains(result.victim)
                order.pop()
            else:
                assert result.victim is None
        order.insert(0, line)
        assert cache.contains(line)


@given(ACCESSES)
@settings(max_examples=120, deadline=None)
def test_writeback_iff_victim_written_since_fill(accesses):
    """A replacement writes back exactly when the victim took a write
    after it last entered the cache."""
    cache = fresh_cache()
    written = set()
    for line, write in accesses:
        result = cache.access(line, write)
        if result.victim is not None:
            assert result.victim_dirty == (result.victim in written)
            assert result.writeback == (result.victim in written)
            written.discard(result.victim)
        if write:
            written.add(line)
    # Final state agrees too: dirty lines are exactly the written,
    # still-resident ones.
    assert set(cache.dirty_lines()) == {
        line for line in written if cache.contains(line)
    }


@given(ACCESSES)
@settings(max_examples=120, deadline=None)
def test_clean_clears_writeback_obligation(accesses):
    """After clean(), a line evicts silently unless rewritten."""
    cache = fresh_cache()
    for line, write in accesses:
        cache.access(line, write)
    for line in list(cache.resident_lines()):
        cache.clean(line)
        assert not cache.is_dirty(line)


@given(st.lists(
    st.tuples(st.integers(0, 63), st.booleans(), st.booleans()),
    min_size=1, max_size=150,
))
@settings(max_examples=100, deadline=None)
def test_l2_l1_inclusion(accesses):
    """Demand accesses through NodeCaches never leave an L1 holding a
    line the L2 evicted: the hierarchy purges L1 copies on every L2
    replacement."""
    node = NodeCaches(
        NUM_SETS * ASSOC * LINE, ASSOC,
        l1_size=2 * ASSOC * LINE, l1_assoc=ASSOC, line_size=LINE,
    )
    for line, write, instr in accesses:
        node.access(line, write and not instr, instr)
        resident = set(node.l2.resident_lines())
        for l1 in (node.l1i, node.l1d):
            for held in l1.resident_lines():
                assert held in resident, (
                    f"L1 holds {held:#x} but L2 evicted it"
                )


@given(st.lists(st.tuples(st.integers(0, 63), st.booleans()),
                min_size=1, max_size=150))
@settings(max_examples=100, deadline=None)
def test_l1d_dirty_implies_l2_tracks_the_line(accesses):
    """Every dirty data line in the L1 is L2-resident, so a future L2
    eviction can always collect the writeback."""
    node = NodeCaches(
        NUM_SETS * ASSOC * LINE, ASSOC,
        l1_size=2 * ASSOC * LINE, l1_assoc=ASSOC, line_size=LINE,
    )
    for line, write in accesses:
        node.access(line, write, False)
        for dirty_line in node.l1d.dirty_lines():
            assert node.l2.contains(dirty_line)
