"""Tests for the remote access cache."""

from repro.memsys.rac import RemoteAccessCache


def make(size=4096, assoc=4):
    return RemoteAccessCache(size, assoc)


class TestLookup:
    def test_miss_counts_probe_not_hit(self):
        r = make()
        assert r.lookup(1, False) is False
        assert r.probes == 1 and r.hits == 0
        assert not r.holds(1)  # lookup never fills

    def test_hit_after_allocate(self):
        r = make()
        r.allocate(1)
        assert r.lookup(1, False) is True
        assert r.probes == 1 and r.hits == 1

    def test_hit_rate(self):
        r = make()
        r.allocate(1)
        r.lookup(1, False)
        r.lookup(2, False)
        assert r.hit_rate == 0.5

    def test_hit_rate_no_probes(self):
        assert make().hit_rate == 0.0

    def test_write_hit_marks_dirty(self):
        r = make()
        r.allocate(1)
        r.lookup(1, True)
        assert r.holds_dirty(1)


class TestAllocate:
    def test_allocate_dirty(self):
        r = make()
        r.allocate(5, dirty=True)
        assert r.holds_dirty(5)

    def test_allocate_eviction_reported(self):
        r = RemoteAccessCache(128, 2)  # one set, two ways
        r.allocate(0, dirty=True)
        r.allocate(1)
        out = r.allocate(2)
        assert out.victim == 0 and out.victim_dirty

    def test_allocate_does_not_count_probe(self):
        r = make()
        r.allocate(5)
        assert r.probes == 0


class TestInvalidate:
    def test_invalidate_dirty(self):
        r = make()
        r.allocate(5, dirty=True)
        assert r.invalidate(5) is True
        assert not r.holds(5)

    def test_invalidate_absent(self):
        assert make().invalidate(5) is False


def test_default_geometry_is_paper_rac():
    r = RemoteAccessCache()
    assert r.cache.size == 8 * 1024 * 1024
    assert r.cache.assoc == 8
