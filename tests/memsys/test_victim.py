"""Tests for the L2 victim buffer."""

import pytest

from repro.memsys.hierarchy import HierarchyLevel, NodeCaches
from repro.memsys.victim import VictimBuffer


class TestBuffer:
    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            VictimBuffer(0)

    def test_insert_and_extract(self):
        vb = VictimBuffer(4)
        vb.insert(10, dirty=True)
        assert vb.holds(10) and vb.is_dirty(10)
        assert vb.extract(10) is True
        assert not vb.holds(10)

    def test_extract_miss_returns_none(self):
        vb = VictimBuffer(4)
        assert vb.extract(10) is None
        assert vb.probes == 1 and vb.hits == 0

    def test_overflow_displaces_oldest(self):
        vb = VictimBuffer(2)
        assert vb.insert(1, False) is None
        assert vb.insert(2, True) is None
        displaced = vb.insert(3, False)
        assert displaced == (1, False)
        assert len(vb) == 2

    def test_reinsert_refreshes_position(self):
        vb = VictimBuffer(2)
        vb.insert(1, False)
        vb.insert(2, False)
        vb.insert(1, False)          # 1 becomes MRU again
        displaced = vb.insert(3, False)
        assert displaced == (2, False)

    def test_displaced_dirty_flag(self):
        vb = VictimBuffer(1)
        vb.insert(1, True)
        assert vb.insert(2, False) == (1, True)

    def test_invalidate(self):
        vb = VictimBuffer(4)
        vb.insert(5, True)
        assert vb.invalidate(5) is True
        assert vb.invalidate(5) is False

    def test_clean(self):
        vb = VictimBuffer(4)
        vb.insert(5, True)
        assert vb.clean(5) is True
        assert vb.holds(5) and not vb.is_dirty(5)

    def test_hit_rate(self):
        vb = VictimBuffer(4)
        vb.insert(5, False)
        vb.extract(5)
        vb.extract(6)
        assert vb.hit_rate == 0.5


class TestHierarchyWithVictimBuffer:
    def make(self, vb=2):
        # L2: one set, one way -> every distinct line evicts the last.
        return NodeCaches(64, 1, l1_size=128, l1_assoc=2, victim_entries=vb)

    def test_conflict_pair_served_by_buffer(self):
        n = self.make()
        n.access(0, False, False)          # miss; L2 holds 0
        r = n.access(1, False, False)      # evicts 0 into the buffer
        assert r.level is HierarchyLevel.MISS
        assert r.victim is None            # buffered, not evicted
        # Inclusion purged 0 from the L1 too; the re-access swaps it
        # back from the victim buffer instead of going to memory.
        r = n.access(0, False, False)
        assert r.level is HierarchyLevel.VICTIM

    def test_victim_hit_after_l1_pressure(self):
        # Tiny L1 (one set, one way) so the L1 cannot mask the L2 swap.
        n = NodeCaches(64, 1, l1_size=64, l1_assoc=1, victim_entries=2)
        n.access(0, False, False)
        n.access(1, False, False)          # L2 evicts 0 -> buffer
        r = n.access(0, False, False)      # L1 miss, L2 miss, buffer hit
        assert r.level is HierarchyLevel.VICTIM
        assert n.l2.contains(0)            # swapped back

    def test_dirty_survives_the_round_trip(self):
        n = NodeCaches(64, 1, l1_size=64, l1_assoc=1, victim_entries=2)
        n.access(0, True, False)
        n.access(1, False, False)
        assert n.victim.is_dirty(0)
        n.access(0, False, False)          # swap back
        assert n.l2.is_dirty(0)

    def test_overflow_finally_evicts(self):
        n = NodeCaches(64, 1, l1_size=64, l1_assoc=1, victim_entries=1)
        n.access(0, True, False)
        n.access(1, False, False)          # 0 -> buffer
        r = n.access(2, False, False)      # 1 -> buffer, 0 displaced
        assert r.level is HierarchyLevel.MISS
        assert r.victim == 0 and r.victim_dirty

    def test_holds_and_dirty_include_buffer(self):
        n = NodeCaches(64, 1, l1_size=64, l1_assoc=1, victim_entries=2)
        n.access(0, True, False)
        n.access(1, False, False)
        assert n.holds(0) and n.holds_dirty(0)

    def test_external_invalidate_reaches_buffer(self):
        n = NodeCaches(64, 1, l1_size=64, l1_assoc=1, victim_entries=2)
        n.access(0, True, False)
        n.access(1, False, False)
        assert n.invalidate(0) is True
        assert not n.holds(0)

    def test_downgrade_reaches_buffer(self):
        n = NodeCaches(64, 1, l1_size=64, l1_assoc=1, victim_entries=2)
        n.access(0, True, False)
        n.access(1, False, False)
        assert n.downgrade(0) is True
        assert n.holds(0) and not n.holds_dirty(0)
