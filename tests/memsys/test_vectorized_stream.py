"""Direct kernel calls with chunk-streamed traces.

``System`` collects a :class:`~repro.trace.stream.StreamedTrace`
before handing it to the vectorized kernels (the
``VectorizedUnsupported`` fallback must receive a materialized trace),
so under ``System.run`` the kernels only ever see materialized input.
The kernels nevertheless normalize streams at their own entry so that
*direct* callers — anything invoking ``replay_uniprocessor`` /
``replay_multiprocessor`` without going through ``System`` — get the
same bit-identical results.  These tests exercise that entry-point
contract by driving the kernels exactly the way ``System.run`` wires
them up (homemap → protocol → interconnect), minus the pre-collect.
"""

from __future__ import annotations

import pytest

from repro.coherence.homemap import HomeMap
from repro.coherence.network import InterconnectModel
from repro.coherence.protocol import DirectoryProtocol
from repro.core.machine import MachineConfig
from repro.core.system import System
from repro.memsys.vectorized import replay_uniprocessor
from repro.memsys.vectorized_mp import replay_multiprocessor
from repro.trace.generator import build_trace
from repro.trace.stream import StreamedTrace

SCALE = 128

#: Chunkings per streamed replay: degenerate single-quantum chunks, a
#: prime stride that never divides the quantum count, and the whole
#: trace as one chunk.
CHUNKS = [1, 7, None]
CHUNK_IDS = ["chunk1", "chunk7", "whole"]


@pytest.fixture(scope="module")
def uni():
    return build_trace(ncpus=1, scale=SCALE, txns=40, warmup_txns=20,
                       seed=13)


@pytest.fixture(scope="module")
def mp():
    return build_trace(ncpus=2, scale=SCALE, txns=60, warmup_txns=24,
                       seed=13)


def run_kernel(machine: MachineConfig, trace, kernel, engine: str) -> dict:
    """Invoke a replay kernel the way ``System.run`` does, skipping the
    System-level stream pre-collect so the kernel's own normalization
    is what handles a streamed ``trace``."""
    system = System(machine, engine=engine)
    system._ran = True
    replicated = None
    if machine.replicate_code:
        text_pages = trace.text_pages
        page_lines_shift = (trace.page_bytes // 64).bit_length() - 1
        replicated = lambda line: (line >> page_lines_shift) in text_pages  # noqa: E731
    homemap = HomeMap(machine.num_nodes, trace.page_bytes, replicated)
    protocol = system.protocol = DirectoryProtocol(
        homemap, system.nodes, system.racs)
    net = InterconnectModel(machine.latencies)
    kernel(system, trace, protocol, net)
    for cpu in system.cpus:
        cpu.drain()
    return system._collect(trace, protocol, net).to_dict()


class TestUniprocessorKernel:
    @pytest.mark.parametrize("chunk", CHUNKS, ids=CHUNK_IDS)
    def test_streamed_input_identical(self, uni, chunk):
        machine = MachineConfig.base(1, scale=SCALE)
        base = run_kernel(machine, uni, replay_uniprocessor, "vectorized")
        stream = StreamedTrace.from_trace(uni, chunk)
        streamed = run_kernel(machine, stream, replay_uniprocessor,
                              "vectorized")
        assert streamed == base
        # The kernel consumed the stream via collect(): the validating
        # iterator saw every quantum and reference.
        assert stream.consumed
        assert stream.quanta_seen == len(uni.quanta)
        assert stream.refs_seen == uni.total_refs
        assert stream.measured_refs == base["trace_refs"]

    def test_stream_single_use_after_kernel(self, uni):
        machine = MachineConfig.base(1, scale=SCALE)
        stream = StreamedTrace.from_trace(uni, 5)
        run_kernel(machine, stream, replay_uniprocessor, "vectorized")
        with pytest.raises(Exception):
            stream.collect()


class TestMultiprocessorKernel:
    @pytest.mark.parametrize("chunk", CHUNKS, ids=CHUNK_IDS)
    def test_streamed_input_identical(self, mp, chunk):
        machine = MachineConfig.fully_integrated(2, scale=SCALE)
        base = run_kernel(machine, mp, replay_multiprocessor,
                          "vectorized-mp")
        stream = StreamedTrace.from_trace(mp, chunk)
        streamed = run_kernel(machine, stream, replay_multiprocessor,
                              "vectorized-mp")
        assert streamed == base
        assert stream.consumed
        assert stream.quanta_seen == len(mp.quanta)

    def test_matches_system_run(self, mp):
        """The direct-call path reproduces ``System.run`` end to end."""
        machine = MachineConfig.fully_integrated(2, scale=SCALE)
        via_system = System(machine, engine="vectorized-mp").run(
            StreamedTrace.from_trace(mp, 7)).to_dict()
        direct = run_kernel(machine, StreamedTrace.from_trace(mp, 7),
                            replay_multiprocessor, "vectorized-mp")
        assert direct == via_system
