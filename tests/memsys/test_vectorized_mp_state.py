"""White-box tests for the batched MP engine's flat state.

The differential and golden suites pin the engine end-to-end; these
tests pin the pieces that full replays cannot reach — in particular
the stale-ownership recovery branch of the inline coherence
transcription, which mirrors ``DirectoryProtocol.service_miss``'s
defensive path and is unreachable from well-formed traces (evictions
always notify the directory first).
"""

import pytest

from repro.memsys.vectorized_mp import (
    MODE_ASSOC,
    MODE_DM,
    MODE_SET,
    _NodeState,
    _walk_assoc,
    _walk_dm,
    _walk_set,
)

L1_N = 4
L2_N = 8
ASSOC = 2

# A data read (flags 0) to line 9 by node 0; the census marked the
# line shared (no EFF_PRIVATE bit) with a remote home (no EFF_LOCAL).
LINE = 9
REMOTE_READ = 0


def _states(mode):
    return [_NodeState(mode, L1_N, L2_N, ASSOC) for _ in range(2)]


def _walk(mode, states, dsh, down):
    L, E, S1 = [LINE], [REMOTE_READ], [LINE % L1_N]
    if mode == MODE_SET:
        return _walk_set(L, E, S1, 0, states, dsh, down)
    S2 = [LINE % L2_N]
    walk = _walk_dm if mode == MODE_DM else _walk_assoc
    return walk(L, E, S1, S2, 0, states, dsh, down)


@pytest.mark.parametrize("mode", [MODE_SET, MODE_DM, MODE_ASSOC])
def test_stale_ownership_recovers_like_the_protocol(mode):
    """A stale self-owner entry (impossible via the walks themselves)
    must not be treated as a remote owner; the miss is serviced as
    ownerless — exactly ``service_miss``'s recovery semantics.  With
    no sharer set the owner entry survives, mirroring
    ``DirectoryState.remove_node``'s early return."""
    states = _states(mode)
    dsh = {}
    down = {LINE: 0}  # stale: node 0 "owns" a line it does not hold
    res = _walk(mode, states, dsh, down)
    i_l1m, d_l1m, l2h = res[:3]
    mc_d = res[12]
    intervs = res[18]
    assert d_l1m == 1 and i_l1m == 0 and l2h == 0
    assert intervs == 0, "stale entry must not look like a remote owner"
    assert mc_d == 1, "recovered miss is serviced as ownerless"
    assert dsh == {LINE: {0}} and down == {LINE: 0}
    assert states[0].holds(LINE) and not states[1].holds(LINE)


@pytest.mark.parametrize("mode", [MODE_SET, MODE_DM, MODE_ASSOC])
def test_stale_owner_with_sharers_drops_only_the_requester(mode):
    """When a sharer set survives alongside the stale owner entry, the
    recovery removes the requester (and the owner record) and keeps
    the other sharers."""
    states = _states(mode)
    dsh = {LINE: {0, 1}}
    down = {LINE: 0}
    _walk(mode, states, dsh, down)
    assert dsh == {LINE: {0, 1}}  # 1 kept; 0 re-added by the fill
    assert down == {}


def test_invalidate_uses_the_membership_set_in_assoc_mode():
    """ASSOC-mode invalidate must keep the flat membership set and the
    per-set LRU lists in lockstep, and report dirtiness once."""
    st = _NodeState(MODE_ASSOC, L1_N, L2_N, ASSOC)
    st.sets2[LINE % L2_N].insert(0, LINE)
    st.resident.add(LINE)
    st.dirty.add(LINE)
    assert st.holds(LINE)
    assert st.invalidate(LINE) is True  # dirty data lost
    assert not st.holds(LINE)
    assert LINE not in st.sets2[LINE % L2_N]
    assert st.invalidate(LINE) is False  # idempotent, nothing held
