"""Stateful testing of SetAssocCache across its full operation set.

The property suite in test_cache.py covers demand accesses; this
machine also interleaves probes, protocol fills, invalidations,
downgrades and dirty-marking, comparing against a transparent
reference after every operation.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.memsys.cache import SetAssocCache

NUM_SETS = 4
ASSOC = 2
LINES = st.integers(0, 23)


class RefCache:
    """Reference: per-set MRU-first list of (line, dirty)."""

    def __init__(self):
        self.sets = {i: [] for i in range(NUM_SETS)}

    def _find(self, line):
        s = self.sets[line % NUM_SETS]
        for i, (l, d) in enumerate(s):
            if l == line:
                return s, i, d
        return s, None, None

    def access(self, line, write):
        s, i, d = self._find(line)
        if i is not None:
            s.pop(i)
            s.insert(0, (line, d or write))
            return True, None
        victim = s.pop() if len(s) >= ASSOC else None
        s.insert(0, (line, write))
        return False, victim

    def probe(self, line, write):
        s, i, d = self._find(line)
        if i is None:
            return False
        s.pop(i)
        s.insert(0, (line, d or write))
        return True

    def fill(self, line, dirty):
        s, i, d = self._find(line)
        if i is not None:
            if dirty:
                s[i] = (line, True)
            return None
        victim = s.pop() if len(s) >= ASSOC else None
        s.insert(0, (line, dirty))
        return victim

    def invalidate(self, line):
        s, i, d = self._find(line)
        if i is None:
            return False
        s.pop(i)
        return d

    def clean(self, line):
        s, i, d = self._find(line)
        if i is not None and d:
            s[i] = (line, False)
            return True
        return False

    def mark_dirty(self, line):
        s, i, d = self._find(line)
        if i is None:
            return False
        s[i] = (line, True)  # no LRU move
        return True

    def contents(self):
        return {
            idx: list(ways) for idx, ways in self.sets.items()
        }


class CacheMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cache = SetAssocCache(NUM_SETS * ASSOC * 64, ASSOC)
        self.ref = RefCache()

    @rule(line=LINES, write=st.booleans())
    def access(self, line, write):
        result = self.cache.access(line, write)
        hit, victim = self.ref.access(line, write)
        assert result.hit == hit
        if victim is not None:
            assert result.victim == victim[0]
            assert result.victim_dirty == victim[1]
        else:
            assert result.victim is None

    @rule(line=LINES, write=st.booleans())
    def probe(self, line, write):
        assert self.cache.probe(line, write) == self.ref.probe(line, write)

    @rule(line=LINES, dirty=st.booleans())
    def fill(self, line, dirty):
        result = self.cache.fill(line, dirty)
        victim = self.ref.fill(line, dirty)
        if victim is not None:
            assert result.victim == victim[0]
            assert result.victim_dirty == victim[1]

    @rule(line=LINES)
    def invalidate(self, line):
        assert self.cache.invalidate(line) == self.ref.invalidate(line)

    @rule(line=LINES)
    def clean(self, line):
        assert self.cache.clean(line) == self.ref.clean(line)

    @rule(line=LINES)
    def mark_dirty(self, line):
        assert self.cache.mark_dirty(line) == self.ref.mark_dirty(line)

    @invariant()
    def same_contents_and_order(self):
        for idx, ways in self.ref.contents().items():
            assert self.cache._sets[idx] == [l for l, _ in ways]
            assert self.cache._dirty[idx] == {l for l, d in ways if d}

    @invariant()
    def occupancy_bounded(self):
        assert self.cache.occupancy <= NUM_SETS * ASSOC


CacheMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=50, deadline=None
)
TestCacheStateMachine = CacheMachine.TestCase
