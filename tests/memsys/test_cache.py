"""Unit and property tests for the set-associative cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsys.cache import CacheGeometryError, SetAssocCache


def make(size=4096, assoc=2, line=64, name="c"):
    return SetAssocCache(size, assoc, line, name)


class TestGeometry:
    def test_num_sets(self):
        c = make(size=8192, assoc=4)
        assert c.num_sets == 8192 // (4 * 64)

    def test_direct_mapped(self):
        c = make(size=1024, assoc=1)
        assert c.num_sets == 16
        assert c.assoc == 1

    def test_fully_associative_single_set(self):
        c = make(size=512, assoc=8)
        assert c.num_sets == 1

    @pytest.mark.parametrize("size,assoc,line", [
        (0, 1, 64), (-64, 1, 64), (64, 0, 64), (64, 1, 0),
    ])
    def test_rejects_nonpositive(self, size, assoc, line):
        with pytest.raises(CacheGeometryError):
            SetAssocCache(size, assoc, line)

    def test_rejects_indivisible_size(self):
        with pytest.raises(CacheGeometryError):
            SetAssocCache(1000, 4, 64)


class TestAccess:
    def test_miss_then_hit(self):
        c = make()
        assert not c.access(5, False).hit
        assert c.access(5, False).hit
        assert c.hits == 1 and c.misses == 1

    def test_contains_does_not_touch_lru(self):
        c = make(size=128, assoc=2, line=64)  # one set, two ways
        c.access(0, False)
        c.access(1, False)
        assert c.contains(0)
        # 0 is LRU despite the contains() call: accessing 2 evicts 0.
        r = c.access(2, False)
        assert r.victim == 0

    def test_lru_order_updates_on_hit(self):
        c = make(size=128, assoc=2)
        c.access(0, False)
        c.access(1, False)
        c.access(0, False)  # 0 becomes MRU; 1 is the victim
        r = c.access(2, False)
        assert r.victim == 1

    def test_eviction_only_within_set(self):
        c = make(size=256, assoc=1)  # 4 sets
        c.access(0, False)
        r = c.access(1, False)  # different set: no eviction
        assert r.victim is None
        r = c.access(4, False)  # same set as 0 (4 % 4 == 0)
        assert r.victim == 0

    def test_write_marks_dirty(self):
        c = make()
        c.access(3, True)
        assert c.is_dirty(3)
        assert not c.is_dirty(4)

    def test_read_does_not_mark_dirty(self):
        c = make()
        c.access(3, False)
        assert not c.is_dirty(3)

    def test_dirty_victim_triggers_writeback(self):
        c = make(size=128, assoc=2)
        c.access(0, True)
        c.access(1, False)
        r = c.access(2, False)
        assert r.victim == 0 and r.victim_dirty and r.writeback
        assert c.writebacks == 1

    def test_clean_victim_no_writeback(self):
        c = make(size=128, assoc=2)
        c.access(0, False)
        c.access(1, False)
        r = c.access(2, False)
        assert r.victim == 0 and not r.victim_dirty and not r.writeback

    def test_occupancy(self):
        c = make(size=512, assoc=2)
        for line in range(5):
            c.access(line, False)
        assert c.occupancy == 5

    def test_resident_lines(self):
        c = make(size=512, assoc=2)
        for line in (3, 9, 12):
            c.access(line, False)
        assert sorted(c.resident_lines()) == [3, 9, 12]


class TestProbe:
    def test_probe_miss_does_not_fill(self):
        c = make()
        assert not c.probe(7, False)
        assert not c.contains(7)
        assert c.misses == 1

    def test_probe_hit_updates_lru_and_dirty(self):
        c = make(size=128, assoc=2)
        c.access(0, False)
        c.access(1, False)
        assert c.probe(0, True)
        assert c.is_dirty(0)
        r = c.access(2, False)
        assert r.victim == 1  # 0 was made MRU by the probe


class TestFill:
    def test_fill_installs_without_demand_stats(self):
        c = make()
        c.fill(9)
        assert c.contains(9)
        assert c.hits == 0 and c.misses == 0

    def test_fill_existing_line_sets_dirty(self):
        c = make()
        c.fill(9)
        r = c.fill(9, dirty=True)
        assert r.hit and c.is_dirty(9)

    def test_fill_evicts(self):
        c = make(size=128, assoc=2)
        c.fill(0, dirty=True)
        c.fill(1)
        r = c.fill(2)
        assert r.victim == 0 and r.victim_dirty


class TestInvalidateClean:
    def test_invalidate_removes(self):
        c = make()
        c.access(4, True)
        assert c.invalidate(4) is True  # was dirty
        assert not c.contains(4)

    def test_invalidate_clean_line(self):
        c = make()
        c.access(4, False)
        assert c.invalidate(4) is False

    def test_invalidate_absent_line(self):
        c = make()
        assert c.invalidate(99) is False

    def test_clean_downgrades(self):
        c = make()
        c.access(4, True)
        assert c.clean(4) is True
        assert c.contains(4) and not c.is_dirty(4)
        assert c.clean(4) is False

    def test_reset_stats(self):
        c = make()
        c.access(1, False)
        c.access(1, False)
        c.reset_stats()
        assert c.hits == c.misses == c.evictions == c.writebacks == 0
        assert c.contains(1)  # contents survive


# -- property-based tests -----------------------------------------------------

@st.composite
def access_sequences(draw):
    lines = draw(st.lists(st.integers(0, 63), min_size=1, max_size=200))
    writes = draw(st.lists(st.booleans(), min_size=len(lines), max_size=len(lines)))
    return list(zip(lines, writes))


class ReferenceCache:
    """Oracle model: per-set list with explicit LRU, O(n) everything."""

    def __init__(self, num_sets, assoc):
        self.num_sets = num_sets
        self.assoc = assoc
        self.sets = {i: [] for i in range(num_sets)}  # (line, dirty) MRU first

    def access(self, line, write):
        s = self.sets[line % self.num_sets]
        for i, (l, d) in enumerate(s):
            if l == line:
                s.pop(i)
                s.insert(0, (line, d or write))
                return ("hit", None)
        victim = s.pop() if len(s) >= self.assoc else None
        s.insert(0, (line, write))
        return ("miss", victim)


@given(access_sequences(), st.sampled_from([1, 2, 4, 8]))
@settings(max_examples=60, deadline=None)
def test_matches_reference_model(seq, assoc):
    size = 16 * assoc * 64  # 16 sets
    cache = SetAssocCache(size, assoc)
    ref = ReferenceCache(16, assoc)
    for line, write in seq:
        result = cache.access(line, write)
        kind, victim = ref.access(line, write)
        assert result.hit == (kind == "hit")
        if victim is not None:
            assert result.victim == victim[0]
            assert result.victim_dirty == victim[1]
        else:
            assert result.victim is None


@given(access_sequences())
@settings(max_examples=40, deadline=None)
def test_occupancy_never_exceeds_capacity(seq):
    cache = SetAssocCache(1024, 2)
    for line, write in seq:
        cache.access(line, write)
        assert cache.occupancy <= 1024 // 64

@given(access_sequences())
@settings(max_examples=40, deadline=None)
def test_hits_plus_misses_equals_accesses(seq):
    cache = SetAssocCache(2048, 4)
    for line, write in seq:
        cache.access(line, write)
    assert cache.hits + cache.misses == len(seq)


@given(access_sequences())
@settings(max_examples=40, deadline=None)
def test_most_recent_access_always_resident(seq):
    cache = SetAssocCache(512, 2)
    for line, write in seq:
        cache.access(line, write)
        assert cache.contains(line)
