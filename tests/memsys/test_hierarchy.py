"""Tests for the per-node L1/L2 hierarchy (inclusion, dirty tracking)."""

from repro.memsys.hierarchy import HierarchyLevel, NodeCaches


def make(l2_size=4096, l2_assoc=2, l1_size=512, l1_assoc=2):
    return NodeCaches(l2_size, l2_assoc, l1_size=l1_size, l1_assoc=l1_assoc)


class TestAccessPath:
    def test_cold_miss(self):
        n = make()
        assert n.access(1, False, False).level is HierarchyLevel.MISS

    def test_l1_hit_after_fill(self):
        n = make()
        n.access(1, False, False)
        assert n.access(1, False, False).level is HierarchyLevel.L1

    def test_l2_hit_after_l1_eviction(self):
        n = make(l1_size=128, l1_assoc=1)  # 2-line L1
        n.access(0, False, False)
        n.access(2, False, False)  # evicts 0 from L1 set 0 (2 sets: 0->0, 2->0)
        result = n.access(0, False, False)
        assert result.level is HierarchyLevel.L2

    def test_split_l1(self):
        n = make()
        n.access(1, False, True)   # instruction fetch
        # Same line as data: misses the L1D but hits the (inclusive) L2.
        assert n.access(1, False, False).level is HierarchyLevel.L2

    def test_write_dirties_l2(self):
        n = make()
        n.access(5, True, False)
        assert n.l2.is_dirty(5)
        assert n.holds_dirty(5)

    def test_write_hit_in_l1_propagates_dirty_to_l2(self):
        n = make()
        n.access(5, False, False)
        assert not n.l2.is_dirty(5)
        n.access(5, True, False)  # L1 hit
        assert n.l2.is_dirty(5)


class TestInclusion:
    def test_l2_eviction_purges_l1(self):
        # L2: 1 set x 2 ways; L1: large enough to hold everything.
        n = make(l2_size=128, l2_assoc=2, l1_size=512, l1_assoc=2)
        n.access(0, False, False)
        n.access(1, False, False)
        result = n.access(2, False, False)  # evicts 0 from L2
        assert result.victim == 0
        assert not n.l1d.contains(0)

    def test_l2_eviction_of_dirty_l1_line_reports_dirty(self):
        n = make(l2_size=128, l2_assoc=2, l1_size=512)
        n.access(0, True, False)
        n.access(1, False, False)
        result = n.access(2, False, False)
        assert result.victim == 0 and result.victim_dirty

    def test_l2_eviction_purges_l1i(self):
        n = make(l2_size=128, l2_assoc=2, l1_size=512)
        n.access(0, False, True)
        n.access(1, False, True)
        n.access(2, False, True)
        assert not n.l1i.contains(0)


class TestExternalOps:
    def test_invalidate_clean(self):
        n = make()
        n.access(3, False, False)
        assert n.invalidate(3) is False
        assert not n.holds(3)

    def test_invalidate_dirty(self):
        n = make()
        n.access(3, True, False)
        assert n.invalidate(3) is True
        assert not n.holds(3)

    def test_downgrade_returns_dirtiness_and_keeps_line(self):
        n = make()
        n.access(3, True, False)
        assert n.downgrade(3) is True
        assert n.holds(3)
        assert not n.holds_dirty(3)
        assert n.downgrade(3) is False

    def test_holds_reflects_l2(self):
        n = make()
        n.access(9, False, True)
        assert n.holds(9)
        assert not n.holds(10)

    def test_reset_stats_preserves_contents(self):
        n = make()
        n.access(1, False, False)
        n.reset_stats()
        assert n.l2.hits == 0
        assert n.holds(1)
