"""Tests for the packed trace-event encoding."""

from hypothesis import given
from hypothesis import strategies as st

from repro.cpu.events import (
    FLAG_DEPENDENT,
    FLAG_INSTR,
    FLAG_KERNEL,
    FLAG_WRITE,
    decode,
    encode,
)


def test_flag_bits_distinct():
    assert len({FLAG_WRITE, FLAG_INSTR, FLAG_KERNEL, FLAG_DEPENDENT}) == 4
    assert FLAG_WRITE | FLAG_INSTR | FLAG_KERNEL | FLAG_DEPENDENT == 0b1111


def test_plain_read():
    ref = encode(100)
    line, write, instr, kernel, dep = decode(ref)
    assert (line, write, instr, kernel, dep) == (100, False, False, False, False)


def test_all_flags():
    ref = encode(7, write=True, instr=True, kernel=True, dependent=True)
    assert decode(ref) == (7, True, True, True, True)


@given(
    st.integers(0, 2**50),
    st.booleans(), st.booleans(), st.booleans(), st.booleans(),
)
def test_roundtrip(line, write, instr, kernel, dep):
    ref = encode(line, write=write, instr=instr, kernel=kernel, dependent=dep)
    assert decode(ref) == (line, write, instr, kernel, dep)


@given(st.integers(0, 2**50))
def test_line_preserved_in_high_bits(line):
    assert encode(line, write=True) >> 4 == line
