"""Tests for the out-of-order CPU's overlap behaviour."""

from repro.cpu.events import STALL_L2_HIT, STALL_LOCAL, STALL_REMOTE_DIRTY
from repro.cpu.inorder import InOrderCPU
from repro.cpu.ooo import OutOfOrderCPU


def test_busy_is_scaled_by_issue_speedup():
    cpu = OutOfOrderCPU()
    cpu.busy(OutOfOrderCPU.ISSUE_SPEEDUP * 10, False)
    assert abs(cpu.busy_cycles - 10) < 1e-9


def test_each_miss_costs_less_than_its_latency():
    """The window shaves WINDOW_CYCLES off every independent miss."""
    one = OutOfOrderCPU()
    one.stall(100, STALL_LOCAL)
    assert one.now == 100 - OutOfOrderCPU.WINDOW_CYCLES
    two = OutOfOrderCPU()
    two.stall(100, STALL_LOCAL)
    two.stall(100, STALL_LOCAL)
    assert two.now - one.now < 100


def test_dependent_misses_serialize():
    indep = OutOfOrderCPU()
    indep.stall(100, STALL_LOCAL)
    indep.stall(100, STALL_LOCAL, dependent=False)
    dep = OutOfOrderCPU()
    dep.stall(100, STALL_LOCAL)
    dep.stall(100, STALL_LOCAL, dependent=True)
    # The dependent load waits for the first miss to return, costing
    # (at least) the window's worth of extra serialization.
    assert dep.now >= indep.now + OutOfOrderCPU.WINDOW_CYCLES


def test_window_hides_short_latency_completely():
    cpu = OutOfOrderCPU()
    cpu.stall(OutOfOrderCPU.WINDOW_CYCLES - 1, STALL_L2_HIT)
    assert cpu.now == 0
    assert cpu.breakdown().l2_hit == 0


def test_long_latency_stalls_beyond_window():
    cpu = OutOfOrderCPU()
    cpu.stall(200, STALL_REMOTE_DIRTY)
    assert cpu.now == 200 - OutOfOrderCPU.WINDOW_CYCLES


def test_instruction_miss_hides_fixed_fraction():
    cpu = OutOfOrderCPU()
    cpu.stall(100, STALL_LOCAL, is_instr=True)
    expected = 100 * (1 - OutOfOrderCPU.FRONTEND_HIDE)
    assert abs(cpu.now - expected) < 1e-9
    assert abs(cpu.breakdown().local_stall - expected) < 1e-9


def test_instruction_hiding_preserves_latency_ratios():
    """Key Section-7 property: I-side stalls scale linearly with latency."""
    a, b = OutOfOrderCPU(), OutOfOrderCPU()
    a.stall(25, STALL_L2_HIT, is_instr=True)
    b.stall(15, STALL_L2_HIT, is_instr=True)
    assert abs(a.now / b.now - 25 / 15) < 1e-9


def test_mshr_limit_throttles_unbounded_overlap():
    cpu = OutOfOrderCPU()
    for _ in range(OutOfOrderCPU.MSHRS + 4):
        cpu.stall(100, STALL_LOCAL)
    # With only MSHRS outstanding slots, 12 misses cannot all overlap.
    assert cpu.now > 100


def test_busy_between_misses_reduces_overlap_pressure():
    burst = OutOfOrderCPU()
    burst.stall(100, STALL_LOCAL)
    burst.stall(100, STALL_LOCAL, dependent=True)
    spaced = OutOfOrderCPU()
    spaced.stall(100, STALL_LOCAL)
    spaced.busy(160, False)
    spaced.stall(100, STALL_LOCAL, dependent=True)
    # The spaced version did 160/ISSUE_SPEEDUP busy cycles of useful
    # work; total time grows, but stall time shrinks.
    assert spaced.breakdown().local_stall < burst.breakdown().local_stall


def test_drain_completes_outstanding():
    cpu = OutOfOrderCPU()
    cpu.stall(1000, STALL_LOCAL)
    before = cpu.now
    cpu.drain()
    assert cpu.now >= before
    cpu.drain()  # idempotent


def test_ooo_never_slower_than_inorder_on_data():
    """For any data-miss sequence the OOO core is at least as fast."""
    seq = [(100, False), (25, False), (275, True), (25, False), (100, False)]
    ino, ooo = InOrderCPU(), OutOfOrderCPU()
    for lat, dep in seq:
        ino.busy(8, False)
        ino.stall(lat, STALL_LOCAL, dependent=dep)
        ooo.busy(8, False)
        ooo.stall(lat, STALL_LOCAL, dependent=dep)
    assert ooo.now < ino.now


def test_reset_keeps_pipeline_position():
    cpu = OutOfOrderCPU()
    cpu.busy(50, False)
    now = cpu.now
    cpu.reset()
    assert cpu.now == now          # pipeline does not rewind
    assert cpu.breakdown().total == 0  # statistics do
