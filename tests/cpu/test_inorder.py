"""Tests for the in-order CPU timing model."""

from repro.cpu.events import (
    STALL_L2_HIT,
    STALL_LOCAL,
    STALL_REMOTE_CLEAN,
    STALL_REMOTE_DIRTY,
)
from repro.cpu.inorder import InOrderCPU


def test_busy_accumulates():
    cpu = InOrderCPU()
    cpu.busy(10, False)
    cpu.busy(5, True)
    assert cpu.busy_cycles == 15
    assert cpu.kernel_busy_cycles == 5


def test_stalls_are_additive_per_class():
    cpu = InOrderCPU()
    cpu.stall(25, STALL_L2_HIT)
    cpu.stall(100, STALL_LOCAL)
    cpu.stall(175, STALL_REMOTE_CLEAN)
    cpu.stall(275, STALL_REMOTE_DIRTY)
    b = cpu.breakdown()
    assert b.l2_hit == 25
    assert b.local_stall == 100
    assert b.remote_clean_stall == 175
    assert b.remote_dirty_stall == 275
    assert b.total == 575


def test_dependent_flag_is_ignored():
    a, b = InOrderCPU(), InOrderCPU()
    a.stall(100, STALL_LOCAL, dependent=True)
    b.stall(100, STALL_LOCAL, dependent=False)
    assert a.now == b.now


def test_now_is_busy_plus_stall():
    cpu = InOrderCPU()
    cpu.busy(8, False)
    cpu.stall(25, STALL_L2_HIT)
    assert cpu.now == 33


def test_reset_zeroes_everything():
    cpu = InOrderCPU()
    cpu.busy(8, True)
    cpu.stall(25, STALL_L2_HIT)
    cpu.reset()
    assert cpu.now == 0
    assert cpu.breakdown().total == 0


def test_drain_is_noop():
    cpu = InOrderCPU()
    cpu.stall(100, STALL_LOCAL)
    before = cpu.now
    cpu.drain()
    assert cpu.now == before


def test_breakdown_utilization():
    cpu = InOrderCPU()
    cpu.busy(20, False)
    cpu.stall(80, STALL_LOCAL)
    assert cpu.breakdown().cpu_utilization == 0.2
