"""Tests for the workload census and miss attribution."""

import pytest

from repro.core.machine import MachineConfig
from repro.core.system import simulate
from repro.trace.census import attribute_misses, census, rebuild_model
from repro.trace.synthetic import make_trace


class TestCensus:
    def test_regions_covered(self, uni_trace):
        c = census(uni_trace)
        for expected in ("text_hot", "ktext_hot", "pga", "log", "sga_buffer"):
            assert expected in c.per_region

    def test_no_unclassified_lines(self, uni_trace):
        c = census(uni_trace)
        assert "?" not in c.per_region

    def test_total_matches_measured_refs(self, uni_trace):
        c = census(uni_trace)
        assert c.total_refs == uni_trace.measured_refs

    def test_code_regions_are_pure_instruction(self, uni_trace):
        c = census(uni_trace)
        for name in ("text_hot", "text_cold", "ktext_hot"):
            s = c.per_region[name]
            assert s.instr == s.touches
            assert s.writes == 0

    def test_kernel_text_flagged_kernel(self, uni_trace):
        s = census(uni_trace).per_region["ktext_hot"]
        assert s.kernel == s.touches

    def test_latches_are_all_writes(self, uni_trace):
        s = census(uni_trace).per_region["sga_latch"]
        assert s.write_fraction == 1.0

    def test_render(self, uni_trace):
        text = census(uni_trace).render()
        assert "text_hot" in text and "refs/txn" in text

    def test_rejects_synthetic_traces(self):
        trace = make_trace(1, [(0, [16])])
        with pytest.raises(ValueError):
            census(trace)


class TestRebuildModel:
    def test_placement_reproduced(self, uni_trace):
        a = rebuild_model(uni_trace)
        b = rebuild_model(uni_trace)
        probe = a.regions["text_hot"].base
        assert a.line_of(probe) == b.line_of(probe)
        assert a.text_pages == uni_trace.text_pages


class TestMissAttribution:
    def test_total_close_to_full_simulation(self, uni_trace):
        machine = MachineConfig.base(1, scale=128)
        attributed = attribute_misses(uni_trace, machine)
        full = simulate(machine, uni_trace)
        # The census model has no L1 filtering, so counts differ
        # somewhat; they must be the same order of magnitude.
        assert 0.4 < attributed.total / max(1, full.misses.total) < 2.5

    def test_attribution_is_deterministic_and_consistent(self, uni_trace):
        machine = MachineConfig.base(1, scale=128)
        a = attribute_misses(uni_trace, machine)
        b = attribute_misses(uni_trace, machine)
        assert a.misses == b.misses
        assert sum(a.misses.values()) == a.total
        # Every attributed region is a region the census knows about.
        regions = set(census(uni_trace).per_region)
        assert set(a.misses) <= regions

    def test_cpu_mismatch_rejected(self, uni_trace):
        with pytest.raises(ValueError):
            attribute_misses(uni_trace, MachineConfig.base(8, scale=128))

    def test_render(self, uni_trace):
        text = attribute_misses(uni_trace, MachineConfig.base(1, scale=128)).render()
        assert "miss attribution" in text and "share" in text
