"""Tests for trace save/load round-tripping."""

import numpy as np
import pytest

from repro.core.machine import MachineConfig
from repro.core.system import simulate
from repro.trace.generator import build_trace
from repro.trace.storage import FORMAT_VERSION, load_trace, save_trace


@pytest.fixture(scope="module")
def trace():
    return build_trace(ncpus=2, scale=256, txns=25, warmup_txns=10, seed=77)


def test_roundtrip_structure(tmp_path, trace):
    path = tmp_path / "trace.npz"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert loaded.ncpus == trace.ncpus
    assert loaded.scale == trace.scale
    assert loaded.page_bytes == trace.page_bytes
    assert loaded.warmup_quanta == trace.warmup_quanta
    assert loaded.measured_txns == trace.measured_txns
    assert loaded.text_pages == trace.text_pages
    assert len(loaded.quanta) == len(trace.quanta)
    for a, b in zip(loaded.quanta, trace.quanta):
        assert a.cpu == b.cpu
        assert a.refs == b.refs


def test_roundtrip_metadata(tmp_path, trace):
    path = tmp_path / "trace.npz"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert loaded.config.ncpus == trace.config.ncpus
    assert loaded.config.tpcb == trace.config.tpcb
    assert loaded.engine_stats.committed == trace.engine_stats.committed


def test_loaded_trace_simulates_identically(tmp_path, trace):
    path = tmp_path / "trace.npz"
    save_trace(trace, path)
    loaded = load_trace(path)
    machine = MachineConfig.base(2, scale=256)
    a = simulate(machine, trace)
    b = simulate(machine, loaded)
    assert a.breakdown.total == b.breakdown.total
    assert a.misses.as_dict() == b.misses.as_dict()


def test_rejects_unknown_format(tmp_path, trace):
    path = tmp_path / "trace.npz"
    save_trace(trace, path)
    # Corrupt the version field.
    import json

    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"]).decode())
        meta["format"] = FORMAT_VERSION + 99
        arrays = {k: data[k] for k in data.files}
    arrays["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    np.savez(path, **arrays)
    with pytest.raises(ValueError):
        load_trace(path)
