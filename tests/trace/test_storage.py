"""Tests for trace save/load round-tripping and corruption handling."""

import json

import numpy as np
import pytest

from repro.core.machine import MachineConfig
from repro.core.system import simulate
from repro.integrity import TraceFormatError
from repro.trace.generator import build_trace
from repro.trace.storage import FORMAT_VERSION, load_trace, save_trace


@pytest.fixture(scope="module")
def trace():
    return build_trace(ncpus=2, scale=256, txns=25, warmup_txns=10, seed=77)


def test_roundtrip_structure(tmp_path, trace):
    path = tmp_path / "trace.npz"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert loaded.ncpus == trace.ncpus
    assert loaded.scale == trace.scale
    assert loaded.page_bytes == trace.page_bytes
    assert loaded.warmup_quanta == trace.warmup_quanta
    assert loaded.measured_txns == trace.measured_txns
    assert loaded.text_pages == trace.text_pages
    assert len(loaded.quanta) == len(trace.quanta)
    for a, b in zip(loaded.quanta, trace.quanta):
        assert a.cpu == b.cpu
        assert a.refs == b.refs


def test_roundtrip_metadata(tmp_path, trace):
    path = tmp_path / "trace.npz"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert loaded.config.ncpus == trace.config.ncpus
    assert loaded.config.tpcb == trace.config.tpcb
    assert loaded.engine_stats.committed == trace.engine_stats.committed


def test_loaded_trace_simulates_identically(tmp_path, trace):
    path = tmp_path / "trace.npz"
    save_trace(trace, path)
    loaded = load_trace(path)
    machine = MachineConfig.base(2, scale=256)
    a = simulate(machine, trace)
    b = simulate(machine, loaded)
    assert a.breakdown.total == b.breakdown.total
    assert a.misses.as_dict() == b.misses.as_dict()


def _rewrite(path, mutate):
    """Load the archive's members, apply ``mutate``, and write it back."""
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"]).decode())
        arrays = {k: data[k] for k in data.files}
    mutate(meta, arrays)
    arrays["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    np.savez(path, **arrays)


def test_rejects_unknown_format(tmp_path, trace):
    path = tmp_path / "trace.npz"
    save_trace(trace, path)

    def bump(meta, arrays):
        meta["format"] = FORMAT_VERSION + 99

    _rewrite(path, bump)
    # TraceFormatError must still be catchable as the historical ValueError.
    with pytest.raises(ValueError):
        load_trace(path)
    with pytest.raises(TraceFormatError, match="unsupported trace format"):
        load_trace(path)


def test_rejects_truncated_archive(tmp_path, trace):
    path = tmp_path / "trace.npz"
    save_trace(trace, path)
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_rejects_garbage_bytes(tmp_path):
    path = tmp_path / "trace.npz"
    path.write_bytes(b"this is not an npz archive at all" * 10)
    with pytest.raises(TraceFormatError, match="cannot read trace archive"):
        load_trace(path)


def test_rejects_checksum_mismatch(tmp_path, trace):
    path = tmp_path / "trace.npz"
    save_trace(trace, path)

    def corrupt_refs(meta, arrays):
        arrays["refs"] = arrays["refs"].copy()
        arrays["refs"][0] ^= 0x10  # flip one bit of one reference

    _rewrite(path, corrupt_refs)
    with pytest.raises(TraceFormatError, match="checksum"):
        load_trace(path)


def test_rejects_missing_member(tmp_path, trace):
    path = tmp_path / "trace.npz"
    save_trace(trace, path)

    def drop_refs(meta, arrays):
        del arrays["refs"]

    _rewrite(path, drop_refs)
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_rejects_inconsistent_offsets(tmp_path, trace):
    path = tmp_path / "trace.npz"
    save_trace(trace, path)

    def shrink_offsets(meta, arrays):
        arrays["offsets"] = arrays["offsets"][:-2]
        # Keep the checksum valid so the structural check is what fires.
        from repro.trace.storage import _content_crc

        meta["crc32"] = _content_crc(arrays["cpus"], arrays["offsets"],
                                     arrays["refs"], arrays["text_pages"])

    _rewrite(path, shrink_offsets)
    with pytest.raises(TraceFormatError, match="offsets"):
        load_trace(path)


def test_version1_archive_still_loads(tmp_path, trace):
    path = tmp_path / "trace.npz"
    save_trace(trace, path)

    def downgrade(meta, arrays):
        meta["format"] = 1
        del meta["crc32"]

    _rewrite(path, downgrade)
    loaded = load_trace(path)
    assert loaded.ncpus == trace.ncpus
    assert len(loaded.quanta) == len(trace.quanta)


def test_missing_file_is_file_not_found(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_trace(tmp_path / "nope.npz")
