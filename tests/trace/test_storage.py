"""Tests for trace save/load round-tripping and corruption handling."""

import json

import numpy as np
import pytest

from repro.core.machine import MachineConfig
from repro.core.system import simulate
from repro.integrity import TraceFormatError
from repro.trace.generator import build_trace
from repro.trace.storage import FORMAT_VERSION, load_trace, save_trace


@pytest.fixture(scope="module")
def trace():
    return build_trace(ncpus=2, scale=256, txns=25, warmup_txns=10, seed=77)


def test_roundtrip_structure(tmp_path, trace):
    path = tmp_path / "trace.npz"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert loaded.ncpus == trace.ncpus
    assert loaded.scale == trace.scale
    assert loaded.page_bytes == trace.page_bytes
    assert loaded.warmup_quanta == trace.warmup_quanta
    assert loaded.measured_txns == trace.measured_txns
    assert loaded.text_pages == trace.text_pages
    assert len(loaded.quanta) == len(trace.quanta)
    for a, b in zip(loaded.quanta, trace.quanta):
        assert a.cpu == b.cpu
        assert a.refs == b.refs


def test_roundtrip_metadata(tmp_path, trace):
    path = tmp_path / "trace.npz"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert loaded.config.ncpus == trace.config.ncpus
    assert loaded.config.tpcb == trace.config.tpcb
    assert loaded.engine_stats.committed == trace.engine_stats.committed


def test_loaded_trace_simulates_identically(tmp_path, trace):
    path = tmp_path / "trace.npz"
    save_trace(trace, path)
    loaded = load_trace(path)
    machine = MachineConfig.base(2, scale=256)
    a = simulate(machine, trace)
    b = simulate(machine, loaded)
    assert a.breakdown.total == b.breakdown.total
    assert a.misses.as_dict() == b.misses.as_dict()


def _rewrite(path, mutate):
    """Load the archive's members, apply ``mutate``, and write it back."""
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"]).decode())
        arrays = {k: data[k] for k in data.files}
    mutate(meta, arrays)
    arrays["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    np.savez(path, **arrays)


def test_rejects_unknown_format(tmp_path, trace):
    path = tmp_path / "trace.npz"
    save_trace(trace, path)

    def bump(meta, arrays):
        meta["format"] = FORMAT_VERSION + 99

    _rewrite(path, bump)
    # TraceFormatError must still be catchable as the historical ValueError.
    with pytest.raises(ValueError):
        load_trace(path)
    with pytest.raises(TraceFormatError, match="unsupported trace format"):
        load_trace(path)


def test_rejects_truncated_archive(tmp_path, trace):
    path = tmp_path / "trace.npz"
    save_trace(trace, path)
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_rejects_garbage_bytes(tmp_path):
    path = tmp_path / "trace.npz"
    path.write_bytes(b"this is not an npz archive at all" * 10)
    with pytest.raises(TraceFormatError, match="cannot read trace archive"):
        load_trace(path)


def test_rejects_checksum_mismatch(tmp_path, trace):
    path = tmp_path / "trace.npz"
    save_trace(trace, path)

    def corrupt_refs(meta, arrays):
        arrays["refs"] = arrays["refs"].copy()
        arrays["refs"][0] ^= 0x10  # flip one bit of one reference

    _rewrite(path, corrupt_refs)
    with pytest.raises(TraceFormatError, match="checksum"):
        load_trace(path)


def test_rejects_missing_member(tmp_path, trace):
    path = tmp_path / "trace.npz"
    save_trace(trace, path)

    def drop_refs(meta, arrays):
        del arrays["refs"]

    _rewrite(path, drop_refs)
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_rejects_inconsistent_offsets(tmp_path, trace):
    path = tmp_path / "trace.npz"
    save_trace(trace, path)

    def shrink_offsets(meta, arrays):
        arrays["offsets"] = arrays["offsets"][:-2]
        # Keep the checksum valid so the structural check is what fires.
        from repro.trace.storage import _content_crc

        meta["crc32"] = _content_crc(arrays["cpus"], arrays["offsets"],
                                     arrays["refs"], arrays["text_pages"])

    _rewrite(path, shrink_offsets)
    with pytest.raises(TraceFormatError, match="offsets"):
        load_trace(path)


def test_version1_archive_still_loads(tmp_path, trace):
    path = tmp_path / "trace.npz"
    save_trace(trace, path)

    def downgrade(meta, arrays):
        meta["format"] = 1
        del meta["crc32"]

    _rewrite(path, downgrade)
    loaded = load_trace(path)
    assert loaded.ncpus == trace.ncpus
    assert len(loaded.quanta) == len(trace.quanta)


def test_missing_file_is_file_not_found(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_trace(tmp_path / "nope.npz")


class TestChunkedArchive:
    """Round-trip and corruption handling for the streamed format."""

    def _spill(self, tmp_path, trace, chunk=5):
        from repro.trace.storage import ChunkedTraceWriter
        from repro.trace.stream import StreamedTrace

        path = str(tmp_path / "stream.npz")
        writer = ChunkedTraceWriter(path)
        stream = StreamedTrace.from_trace(trace, chunk).tee(
            writer.add_chunk, finish=writer.finish, abort=writer.abort)
        for _ in stream.chunks():
            pass
        return path

    def test_roundtrip(self, tmp_path, trace):
        from repro.trace.storage import open_stream_archive

        path = self._spill(tmp_path, trace)
        loaded = open_stream_archive(path).collect()
        assert loaded.ncpus == trace.ncpus
        assert loaded.warmup_quanta == trace.warmup_quanta
        assert loaded.text_pages == trace.text_pages
        assert loaded.engine_stats == trace.engine_stats
        assert loaded.config.tpcb == trace.config.tpcb
        assert len(loaded.quanta) == len(trace.quanta)
        for a, b in zip(loaded.quanta, trace.quanta):
            assert a.cpu == b.cpu
            assert list(a.refs) == list(b.refs)

    def test_streamed_replay_identical(self, tmp_path, trace):
        from repro.trace.storage import open_stream_archive

        path = self._spill(tmp_path, trace)
        machine = MachineConfig.base(2, scale=256)
        base = simulate(machine, trace).to_dict()
        got = simulate(machine, open_stream_archive(path)).to_dict()
        assert got == base

    def test_abort_leaves_no_archive(self, tmp_path, trace):
        from repro.trace.storage import ChunkedTraceWriter
        from repro.trace.stream import StreamedTrace, TraceChunk

        path = str(tmp_path / "stream.npz")
        writer = ChunkedTraceWriter(path)

        def broken():
            yield TraceChunk(0, trace.quanta[:2])
            raise RuntimeError("interrupted")

        stream = StreamedTrace.from_trace(trace, 2)
        stream._chunks = broken()
        stream.tee(writer.add_chunk, finish=writer.finish,
                   abort=writer.abort)
        with pytest.raises(RuntimeError):
            for _ in stream.chunks():
                pass
        assert not list(tmp_path.iterdir())  # no archive, no temp file

    def test_rejects_wrong_version(self, tmp_path, trace):
        from repro.trace.storage import open_stream_archive

        path = self._spill(tmp_path, trace)
        with np.load(path) as npz:
            arrays = {k: npz[k] for k in npz.files}
        meta = json.loads(bytes(arrays["meta"]).decode())
        meta["format"] = 99
        arrays["meta"] = np.frombuffer(json.dumps(meta).encode(),
                                       dtype=np.uint8)
        np.savez(path, **arrays)
        with pytest.raises(TraceFormatError):
            open_stream_archive(path)

    def test_rejects_corrupt_chunk_midstream(self, tmp_path, trace):
        from repro.trace.storage import open_stream_archive

        path = self._spill(tmp_path, trace)
        with np.load(path) as npz:
            arrays = {k: npz[k] for k in npz.files}
        last = max(
            int(k.split("_")[1]) for k in arrays if k.startswith("refs_"))
        arrays[f"refs_{last}"] = arrays[f"refs_{last}"].copy()
        arrays[f"refs_{last}"][0] ^= 1 << 20
        np.savez(path, **arrays)
        streamed = open_stream_archive(path)  # header still validates
        with pytest.raises(TraceFormatError):
            for _ in streamed.chunks():
                pass

    def test_missing_file_is_file_not_found(self, tmp_path):
        from repro.trace.storage import open_stream_archive

        with pytest.raises(FileNotFoundError):
            open_stream_archive(str(tmp_path / "absent.npz"))

    def test_garbage_is_format_error(self, tmp_path):
        from repro.trace.storage import open_stream_archive

        path = tmp_path / "garbage.npz"
        path.write_bytes(b"not an archive at all")
        with pytest.raises(TraceFormatError):
            open_stream_archive(str(path))

    def test_store_rebuilds_corrupt_archive(self, tmp_path):
        from repro.runner.tracestore import StreamingTraceStore, TraceSpec

        spec = TraceSpec(ncpus=2, scale=256, txns=10, seed=77,
                         warmup_txns=10)
        store = StreamingTraceStore(spill_dir=str(tmp_path))
        path = store.ensure_archived(spec)
        with open(path, "r+b") as fh:
            fh.write(b"\x00" * 64)
        streamed = store.stream(spec)
        assert streamed.quanta_seen == 0
        n = sum(len(c) for c in streamed.chunks())
        assert n > 0
        assert store.stats.builds == 2  # first build + rebuild
