"""Tests for the tracer's kernel-activity expansion of engine hooks."""

import random

import pytest

from repro.cpu.events import decode
from repro.oltp.config import WorkloadConfig
from repro.oltp.tracing import ProcessContext
from repro.trace.address_space import MemoryModel
from repro.trace.codepath import CodeModel
from repro.trace.generator import TraceBuilder


@pytest.fixture()
def builder():
    config = WorkloadConfig.build(ncpus=2, scale=128, seed=9)
    model = MemoryModel(config, seed=9)
    rng = random.Random(9)
    b = TraceBuilder(model, CodeModel(model, rng), rng, warmup_txns=0)
    b.on_switch(ProcessContext("server", 0, cpu=1))
    b._buf.clear()  # drop the scheduler refs; tests focus on one hook
    return b


def lines_in_region(builder, region_name):
    model = builder.model
    region = model.regions[region_name]
    page0 = region.base // model.page_bytes
    page1 = (region.end - 1) // model.page_bytes
    pages = {model._ppage_base_line(p) // model.page_lines
             for p in range(page0, page1 + 1)}
    return pages


def test_pipe_read_touches_pipe_buffer_and_proc(builder):
    builder.on_syscall("pipe_read", 128, obj=0)
    refs = [decode(r) for r in builder._buf]
    kernel_data = [r for r in refs if r[3] and not r[2]]
    assert kernel_data  # proc struct + pipe buffer
    kernel_code = [r for r in refs if r[3] and r[2]]
    assert kernel_code  # syscall entry + pipe path


def test_pipe_write_marks_buffer_written(builder):
    builder.on_syscall("pipe_write", 128, obj=1)
    pipe_pages = lines_in_region(builder, "kpipe")
    model = builder.model
    writes = [
        decode(r) for r in builder._buf
        if decode(r)[1] and (decode(r)[0] // model.page_lines) in pipe_pages
    ]
    assert writes


def test_disk_io_touches_device_queue_and_interrupt_path(builder):
    builder.on_syscall("disk_write", 2048)
    refs = [decode(r) for r in builder._buf]
    kglobal_pages = lines_in_region(builder, "kglobal")
    model = builder.model
    device = [r for r in refs
              if (r[0] // model.page_lines) in kglobal_pages and r[1]]
    assert device  # device-queue write


def test_syscall_requires_process(builder):
    builder._current = None
    with pytest.raises(RuntimeError):
        builder.on_syscall("pipe_read", 64)
    with pytest.raises(RuntimeError):
        builder.on_pga(0, 64, False)


def test_switch_emits_scheduler_traffic(builder):
    builder.on_switch(ProcessContext("server", 1, cpu=0))
    # The flush pushed the old quantum; the new buffer has runqueue
    # and proc-struct refs, all kernel-flagged.
    assert builder._buf
    assert all(decode(r)[3] for r in builder._buf)


def test_quantum_tagged_with_process_cpu(builder):
    builder.on_code("sql_parse")
    builder.on_switch(ProcessContext("server", 1, cpu=0))
    assert builder.quanta[-1].cpu == 1  # the flushed quantum ran on cpu 1


def test_dependent_flag_only_on_chain_head(builder):
    builder.on_meta("buf_hash", 3, False, dependent=True)
    # A multi-line touch would clear the flag after the first line;
    # a 16-byte meta touch is one line, flagged.
    assert decode(builder._buf[-1])[4] is True
    builder.on_frame(0, 0, 256, False, dependent=True)  # 4 lines
    tail = [decode(r)[4] for r in builder._buf[-4:]]
    assert tail == [True, False, False, False]
