"""Property tests for the sharing-census classifier.

The staged multiprocessor engine's exactness rests on two guarantees
of :func:`repro.trace.census.sharing_census`, which these hypothesis
suites enforce directly on randomly generated traces:

* **soundness** — a line classified private is never touched by a
  second node anywhere in the replayed trace (warmup included), and a
  line touched by two nodes is never classified private;
* **interleaving stability** — classification depends only on the set
  of (line, node) pairs, so any re-interleaving of the trace's quanta
  yields the identical classification.
"""

from collections import defaultdict

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.events import encode
from repro.trace.census import sharing_census
from repro.trace.synthetic import make_trace

NCPUS = 4


@st.composite
def trace_shapes(draw):
    """A small multiprocessor trace: (cpu, [packed refs]) quanta over a
    line space narrow enough to force both private and shared lines."""
    nquanta = draw(st.integers(min_value=1, max_value=12))
    quanta = []
    for _ in range(nquanta):
        cpu = draw(st.integers(min_value=0, max_value=NCPUS - 1))
        nrefs = draw(st.integers(min_value=0, max_value=12))
        refs = []
        for _ in range(nrefs):
            line = draw(st.integers(min_value=0, max_value=40))
            refs.append(
                encode(
                    line,
                    write=draw(st.booleans()),
                    instr=draw(st.booleans()),
                    kernel=draw(st.booleans()),
                )
            )
        quanta.append((cpu, refs))
    return quanta


def build(quanta, warmup=0):
    return make_trace(NCPUS, quanta, page_bytes=256, warmup_quanta=warmup)


class TestPrivateSoundness:
    @given(quanta=trace_shapes())
    @settings(max_examples=120, deadline=None)
    def test_private_line_has_exactly_one_toucher(self, quanta):
        sc = sharing_census(build(quanta))
        touchers = defaultdict(set)
        for cpu, refs in quanta:
            for ref in refs:
                touchers[ref >> 4].add(cpu)
        for line, nodes in touchers.items():
            assert sc.is_private(line) == (len(nodes) == 1), (
                f"line {line} touched by {sorted(nodes)} classified "
                f"{'private' if sc.is_private(line) else 'shared'}"
            )

    @given(quanta=trace_shapes())
    @settings(max_examples=60, deadline=None)
    def test_per_reference_mask_matches_line_class(self, quanta):
        sc = sharing_census(build(quanta))
        for i in range(len(sc.lines)):
            assert bool(sc.private[i]) == sc.is_private(int(sc.lines[i]))

    @given(quanta=trace_shapes())
    @settings(max_examples=60, deadline=None)
    def test_census_covers_warmup_quanta(self, quanta):
        """Privacy must hold over the whole trace, not just the
        measured window — a warmup-only second toucher still makes a
        line shared."""
        warmup = min(len(quanta) - 1, 1) if len(quanta) > 1 else 0
        sc = sharing_census(build(quanta, warmup=warmup))
        assert len(sc.lines) == sum(len(refs) for _, refs in quanta)

    @given(quanta=trace_shapes())
    @settings(max_examples=60, deadline=None)
    def test_partition_is_exhaustive(self, quanta):
        sc = sharing_census(build(quanta))
        every = set(np.asarray(sc.uniq).tolist())
        assert every == set(np.asarray(sc.private_lines()).tolist()) | set(
            np.asarray(sc.shared_lines()).tolist()
        )


class TestInterleavingStability:
    @given(quanta=trace_shapes(), data=st.data())
    @settings(max_examples=120, deadline=None)
    def test_classification_stable_under_permutation(self, quanta, data):
        perm = data.draw(st.permutations(range(len(quanta))))
        base = sharing_census(build(quanta))
        shuffled = sharing_census(build([quanta[i] for i in perm]))
        assert np.array_equal(base.uniq, shuffled.uniq)
        assert np.array_equal(base.uniq_private, shuffled.uniq_private)

    @given(quanta=trace_shapes())
    @settings(max_examples=60, deadline=None)
    def test_reversal_preserves_classification(self, quanta):
        base = sharing_census(build(quanta))
        rev = sharing_census(build(list(reversed(quanta))))
        assert np.array_equal(base.uniq, rev.uniq)
        assert np.array_equal(base.uniq_private, rev.uniq_private)


class TestCensusCache:
    def test_same_trace_object_is_cached(self):
        trace = build([(0, [encode(1), encode(2)]), (1, [encode(2)])])
        assert sharing_census(trace) is sharing_census(trace)

    def test_cores_per_node_is_part_of_the_key(self):
        trace = build([(0, [encode(1)]), (1, [encode(1)])])
        by_node = sharing_census(trace, cores_per_node=1)
        by_chip = sharing_census(trace, cores_per_node=2)
        assert by_node is not by_chip
        # CPUs 0 and 1 fold onto one node at two cores per node, so
        # the contended line becomes private to that node.
        assert not by_node.is_private(1)
        assert by_chip.is_private(1)
