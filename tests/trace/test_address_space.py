"""Tests for the address-space model and page colouring."""

from collections import defaultdict

from repro.oltp.config import WorkloadConfig
from repro.params import LINE_SIZE
from repro.trace.address_space import MemoryModel


def make(ncpus=1, scale=128, seed=5):
    return MemoryModel(WorkloadConfig.build(ncpus=ncpus, scale=scale, seed=5), seed=seed)


class TestRegions:
    def test_regions_do_not_overlap(self):
        model = make()
        spans = sorted((r.base, r.end, r.name) for r in model.regions.values())
        for (b0, e0, n0), (b1, e1, n1) in zip(spans, spans[1:]):
            assert e0 <= b1, f"{n0} overlaps {n1}"

    def test_regions_page_aligned(self):
        model = make()
        for region in model.regions.values():
            assert region.base % model.page_bytes == 0

    def test_guard_page_between_regions(self):
        model = make()
        spans = sorted((r.base, r.end) for r in model.regions.values())
        for (b0, e0), (b1, e1) in zip(spans, spans[1:]):
            assert b1 - e0 >= 1  # at least the guard gap

    def test_expected_regions_exist(self):
        model = make(ncpus=2)
        names = set(model.regions)
        for required in ("text_hot", "ktext_hot", "sga_buffer", "sga_hash",
                         "sga_headers", "sga_locks", "sga_latch", "sga_txnslot",
                         "log", "kproc", "kpipe", "krunq", "kglobal", "pga0"):
            assert required in names

    def test_one_pga_per_process(self):
        config = WorkloadConfig.build(ncpus=2, scale=128)
        model = MemoryModel(config)
        pgas = [n for n in model.regions if n.startswith("pga")]
        assert len(pgas) == config.num_servers + 2


class TestTranslation:
    def test_deterministic(self):
        a, b = make(seed=9), make(seed=9)
        for addr in range(0, 100_000, 997):
            assert a.line_of(addr) == b.line_of(addr)

    def test_seed_changes_placement(self):
        a, b = make(seed=1), make(seed=2)
        diffs = sum(
            a.line_of(addr) != b.line_of(addr) for addr in range(0, 65536, 4096)
        )
        assert diffs > 10

    def test_same_page_lines_contiguous(self):
        model = make()
        base = model.regions["text_hot"].base
        l0 = model.line_of(base)
        l1 = model.line_of(base + LINE_SIZE)
        assert l1 == l0 + 1

    def test_lines_of_covers_span(self):
        model = make()
        base = model.regions["log"].base
        lines = model.lines_of(base + 10, 130)  # crosses 2 line boundaries
        assert len(lines) == 3

    def test_lines_of_empty(self):
        assert make().lines_of(0, 0) == []

    def test_distinct_objects_distinct_lines(self):
        model = make()
        seen = set()
        for struct, count in (("latch", 8), ("lock", 16)):
            for i in range(count):
                line = model.line_of(model.meta_addr(struct, i))
                assert line not in seen
                seen.add(line)


class TestPlacementHelpers:
    def test_frame_addr_bounds(self):
        model = make()
        model.frame_addr(0)
        model.frame_addr(model.config.buffer_frames - 1)
        import pytest
        with pytest.raises(IndexError):
            model.frame_addr(model.config.buffer_frames)

    def test_meta_addr_unknown_struct(self):
        import pytest
        with pytest.raises(KeyError):
            make().meta_addr("bogus", 0)

    def test_log_addr_wraps(self):
        model = make()
        size = model.config.log_buffer_bytes
        assert model.log_addr(size + 5) == model.log_addr(5)

    def test_pga_addr_wraps_within_region(self):
        model = make()
        region = model.regions["pga0"]
        assert model.pga_addr(0, region.size + 3) == region.base + 3


class TestColouring:
    def test_alias_groups_share_colours(self):
        model = make(ncpus=1)
        ncpus = 1
        groups = defaultdict(list)
        cache_pages = 1 << 14
        for pga_id in range(model.config.num_servers):
            region = model.regions[f"pga{pga_id}"]
            colour = (model.line_of(region.base) // model.page_lines) % cache_pages
            groups[(pga_id // ncpus) % model.NUM_ALIAS_GROUPS].append(colour)
        for colours in groups.values():
            assert len(set(colours)) == 1  # identical within a group

    def test_different_groups_different_colours(self):
        model = make()
        cache_pages = 1 << 14
        colours = set()
        for group_rep in range(model.NUM_ALIAS_GROUPS):
            region = model.regions[f"pga{group_rep}"]
            colours.add((model.line_of(region.base) // model.page_lines) % cache_pages)
        assert len(colours) == model.NUM_ALIAS_GROUPS

    def test_pga_physical_lines_still_unique(self):
        """Aliasing is in the index bits only — addresses stay distinct."""
        model = make()
        lines = set()
        for pga_id in range(model.config.num_servers):
            region = model.regions[f"pga{pga_id}"]
            for off in range(0, region.size, LINE_SIZE):
                line = model.line_of(region.base + off)
                assert line not in lines
                lines.add(line)


class TestTextPages:
    def test_text_pages_cover_code_regions(self):
        model = make()
        for name in ("text_hot", "text_cold", "ktext_hot", "ktext_cold"):
            region = model.regions[name]
            line = model.line_of(region.base)
            assert model.is_text_page(line // model.page_lines)

    def test_data_pages_not_text(self):
        model = make()
        line = model.line_of(model.regions["sga_buffer"].base)
        assert not model.is_text_page(line // model.page_lines)
