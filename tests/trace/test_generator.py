"""Tests for trace generation: structure, warmup, determinism."""

from repro.cpu.events import FLAG_INSTR, FLAG_KERNEL, FLAG_WRITE, decode
from repro.trace.generator import build_trace


class TestStructure:
    def test_quanta_tagged_with_valid_cpus(self, mp_trace):
        assert mp_trace.ncpus == 4
        assert all(0 <= q.cpu < 4 for q in mp_trace.quanta)

    def test_all_cpus_appear(self, mp_trace):
        assert {q.cpu for q in mp_trace.quanta} == set(range(4))

    def test_total_refs_positive(self, uni_trace):
        assert uni_trace.total_refs > 10_000

    def test_quanta_nonempty(self, uni_trace):
        assert all(len(q.refs) for q in uni_trace.quanta)

    def test_mix_of_ref_types(self, uni_trace):
        instr = writes = kernel = 0
        total = 0
        for q in uni_trace.quanta[:100]:
            for ref in q.refs:
                total += 1
                if ref & FLAG_INSTR:
                    instr += 1
                if ref & FLAG_WRITE:
                    writes += 1
                if ref & FLAG_KERNEL:
                    kernel += 1
        assert 0.5 < instr / total < 0.95
        assert writes > 0 and kernel > 0

    def test_instructions_never_written(self, uni_trace):
        for q in uni_trace.quanta[:50]:
            for ref in q.refs:
                line, write, instr, _, _ = decode(ref)
                assert not (write and instr)

    def test_dependent_loads_exist(self, uni_trace):
        deps = sum(
            1 for q in uni_trace.quanta[:100] for ref in q.refs
            if decode(ref)[4]
        )
        assert deps > 0


class TestWarmup:
    def test_warmup_boundary_inside_trace(self, uni_trace):
        assert 0 < uni_trace.warmup_quanta < len(uni_trace.quanta)

    def test_measured_refs_excludes_warmup(self, uni_trace):
        assert uni_trace.measured_refs < uni_trace.total_refs

    def test_measured_txns_recorded(self, uni_trace):
        assert uni_trace.measured_txns == 60


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = build_trace(ncpus=1, scale=256, txns=10, warmup_txns=5, seed=42)
        b = build_trace(ncpus=1, scale=256, txns=10, warmup_txns=5, seed=42)
        assert len(a.quanta) == len(b.quanta)
        for qa, qb in zip(a.quanta, b.quanta):
            assert qa.cpu == qb.cpu
            assert qa.refs == qb.refs

    def test_different_seed_different_trace(self):
        a = build_trace(ncpus=1, scale=256, txns=10, warmup_txns=5, seed=1)
        b = build_trace(ncpus=1, scale=256, txns=10, warmup_txns=5, seed=2)
        assert any(qa.refs != qb.refs for qa, qb in zip(a.quanta, b.quanta))


class TestMetadata:
    def test_config_attached(self, uni_trace):
        assert uni_trace.config.ncpus == 1

    def test_engine_stats_attached(self, uni_trace):
        assert uni_trace.engine_stats.committed >= uni_trace.measured_txns

    def test_text_pages_nonempty(self, uni_trace):
        assert uni_trace.text_pages

    def test_page_bytes_power_of_two_lines(self, uni_trace):
        lines = uni_trace.page_bytes // 64
        assert lines >= 4 and (lines & (lines - 1)) == 0
