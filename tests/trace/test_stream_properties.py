"""Property suite for the streaming trace pipeline.

The replay engines' streamed results are bit-identical to their
materialized results only if three producer-side invariants hold; this
suite pins each one directly:

* **quantum alignment** — a chunk boundary never splits a quantum, and
  concatenating every chunk's quanta reconstructs the materialized
  trace exactly (same CPUs, same packed reference arrays, in order);
* **warmup visibility** — by the time the chunk containing the
  warmup/measurement boundary is yielded, ``warmup_quanta`` is
  published and final, so a consumer re-reading it per chunk crosses
  the boundary at the exact same reference as a materialized replay;
* **stat invariance** — :class:`StreamingTraceStore` counts stream
  origins per ``stream()`` call, never per chunk, so its stats are
  invariant to whatever chunk size a consumer picks.

``stream_trace`` itself is checked for full equality against
``build_trace`` — same workload engine, same seeds, so the streamed
chunks must concatenate to the identical trace, warmup boundary and
engine statistics included.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.events import encode
from repro.integrity.errors import StateError, TraceMismatchError
from repro.trace.generator import build_trace, stream_trace
from repro.trace.stream import (
    NEVER_WARMUP,
    StreamedTrace,
    TraceChunk,
    iter_chunks,
    iter_quanta,
    is_streaming,
    warmup_bound,
)
from repro.trace.synthetic import make_trace

# One real OLTP workload, built once: small enough for a test module,
# large enough for many quanta per chunk-size probe.
WORKLOAD = dict(ncpus=2, scale=256, txns=12, seed=5)


@pytest.fixture(scope="module")
def reference():
    return build_trace(**WORKLOAD)


def drain(trace):
    """Consume a stream; return its chunks."""
    return list(trace.chunks())


def synthetic(seed, nquanta, ncpus=2, warmup=0):
    rng = random.Random(seed)
    quanta = []
    for _ in range(nquanta):
        refs = [
            encode(rng.randrange(200), write=rng.random() < 0.3)
            for _ in range(rng.randint(1, 8))
        ]
        quanta.append((rng.randrange(ncpus), refs))
    return make_trace(ncpus, quanta, warmup_quanta=warmup)


def assert_same_quanta(chunks, trace):
    """Chunk concatenation reconstructs the trace's quanta exactly."""
    flat = [q for c in chunks for q in c.quanta]
    assert len(flat) == len(trace.quanta)
    for got, want in zip(flat, trace.quanta):
        assert got.cpu == want.cpu
        assert list(got.refs) == list(want.refs)


class TestChunkAlignment:
    @settings(max_examples=40, deadline=None)
    @given(nquanta=st.integers(min_value=1, max_value=40),
           chunk=st.integers(min_value=1, max_value=50),
           seed=st.integers(min_value=0, max_value=999))
    def test_from_trace_reconstructs_exactly(self, nquanta, chunk, seed):
        trace = synthetic(seed, nquanta)
        chunks = drain(StreamedTrace.from_trace(trace, chunk))
        # Contiguous, quantum-aligned chunk starts of the chosen size.
        pos = 0
        for c in chunks:
            assert c.start == pos
            assert len(c) <= chunk
            pos += len(c)
        assert all(len(c) == chunk for c in chunks[:-1])
        assert_same_quanta(chunks, trace)

    @settings(max_examples=40, deadline=None)
    @given(nquanta=st.integers(min_value=1, max_value=40),
           produce=st.integers(min_value=1, max_value=9),
           rechunk=st.integers(min_value=1, max_value=50),
           seed=st.integers(min_value=0, max_value=999))
    def test_rechunk_regroups_without_splitting(self, nquanta, produce,
                                                rechunk, seed):
        trace = synthetic(seed, nquanta)
        stream = StreamedTrace.from_trace(trace, produce).rechunk(rechunk)
        chunks = drain(stream)
        pos = 0
        for c in chunks:
            assert c.start == pos
            pos += len(c)
        assert all(len(c) == rechunk for c in chunks[:-1])
        assert chunks[-1].quanta
        assert_same_quanta(chunks, trace)

    def test_whole_trace_is_one_chunk(self):
        trace = synthetic(1, 17)
        chunks = drain(StreamedTrace.from_trace(trace))
        assert len(chunks) == 1
        assert chunks[0].start == 0
        assert_same_quanta(chunks, trace)

    def test_iter_chunks_on_materialized_is_zero_copy(self):
        trace = synthetic(2, 5)
        (chunk,) = iter_chunks(trace)
        assert chunk.quanta is trace.quanta

    @settings(max_examples=25, deadline=None)
    @given(nquanta=st.integers(min_value=1, max_value=30),
           chunk=st.integers(min_value=1, max_value=12),
           warmup=st.integers(min_value=0, max_value=29),
           seed=st.integers(min_value=0, max_value=999))
    def test_iter_quanta_matches_materialized(self, nquanta, chunk,
                                              warmup, seed):
        if warmup >= nquanta:
            warmup = nquanta - 1
        trace = synthetic(seed, nquanta, warmup=warmup)
        base = list(iter_quanta(trace))
        streamed = list(iter_quanta(StreamedTrace.from_trace(trace, chunk)))
        assert [(qi, b, m) for qi, _, b, m in base] == \
               [(qi, b, m) for qi, _, b, m in streamed]


class TestGeneratorStream:
    def test_stream_equals_build(self, reference):
        streamed = stream_trace(**WORKLOAD, chunk_txns=3)
        chunks = drain(streamed)
        assert_same_quanta(chunks, reference)
        assert streamed.warmup_quanta == reference.warmup_quanta
        assert streamed.engine_stats == reference.engine_stats
        assert streamed.text_pages == reference.text_pages
        assert streamed.measured_txns == reference.measured_txns
        assert streamed.page_bytes == reference.page_bytes
        assert streamed.num_quanta == len(reference.quanta)
        assert streamed.refs_seen == sum(
            len(q.refs) for q in reference.quanta)
        assert streamed.measured_refs == reference.measured_refs

    @pytest.mark.parametrize("chunk_txns", [1, 7, 10_000])
    def test_stream_chunk_size_invariant(self, chunk_txns, reference):
        chunks = drain(stream_trace(**WORKLOAD, chunk_txns=chunk_txns))
        assert_same_quanta(chunks, reference)

    def test_warmup_published_before_boundary_chunk(self, reference):
        """The warmup-visibility contract, observed chunk by chunk."""
        final = reference.warmup_quanta
        assert final > 0
        streamed = stream_trace(**WORKLOAD, chunk_txns=2)
        saw_boundary = False
        for chunk in streamed.chunks():
            if chunk.start + len(chunk) > final:
                # This chunk contains (or follows) the boundary: the
                # producer must already have published the final value.
                assert streamed.warmup_quanta == final
                saw_boundary = True
            elif streamed.warmup_quanta is not None:
                # Early publication is allowed only if already final.
                assert streamed.warmup_quanta == final
        assert saw_boundary

    def test_collect_materializes_equal_trace(self, reference):
        collected = stream_trace(**WORKLOAD, chunk_txns=4).collect()
        assert collected.warmup_quanta == reference.warmup_quanta
        assert collected.engine_stats == reference.engine_stats
        assert len(collected.quanta) == len(reference.quanta)
        for got, want in zip(collected.quanta, reference.quanta):
            assert got.cpu == want.cpu
            assert list(got.refs) == list(want.refs)


class TestStreamValidation:
    def test_single_use(self):
        stream = StreamedTrace.from_trace(synthetic(3, 6), 2)
        drain(stream)
        with pytest.raises(StateError):
            stream.chunks()

    def test_empty_stream_rejected(self):
        stream = StreamedTrace.from_trace(synthetic(3, 6), 2)
        stream._chunks = iter(())
        stream.num_quanta = None  # undeclared length, like a live stream
        with pytest.raises(TraceMismatchError):
            drain(stream)

    def test_non_contiguous_chunks_rejected(self):
        trace = synthetic(3, 6)
        stream = StreamedTrace.from_trace(trace, 2)
        stream._chunks = iter([TraceChunk(1, trace.quanta[1:])])
        with pytest.raises(StateError):
            drain(stream)

    def test_out_of_range_cpu_rejected(self):
        trace = synthetic(3, 6, ncpus=4)
        stream = StreamedTrace.from_trace(trace, 2)
        stream.ncpus = 2  # declare fewer CPUs than the quanta use
        with pytest.raises(TraceMismatchError):
            drain(stream)

    def test_truncated_stream_rejected(self):
        trace = synthetic(3, 6)
        stream = StreamedTrace.from_trace(trace, 2)
        stream.num_quanta = 7
        with pytest.raises(StateError):
            drain(stream)

    def test_all_warmup_rejected(self):
        trace = synthetic(3, 6)
        stream = StreamedTrace.from_trace(trace, 2)
        stream.warmup_quanta = 6
        with pytest.raises(TraceMismatchError):
            drain(stream)

    def test_none_warmup_finalizes_to_zero(self):
        stream = StreamedTrace.from_trace(synthetic(3, 6), 2)
        stream.warmup_quanta = None
        drain(stream)
        assert stream.warmup_quanta == 0
        assert stream.measured_refs == stream.refs_seen

    def test_warmup_bound_sentinel(self):
        stream = StreamedTrace.from_trace(synthetic(3, 6), 2)
        stream.warmup_quanta = None
        assert warmup_bound(stream) == NEVER_WARMUP
        stream.warmup_quanta = 4
        assert warmup_bound(stream) == 4

    def test_is_streaming(self):
        trace = synthetic(3, 6)
        assert not is_streaming(trace)
        assert is_streaming(StreamedTrace.from_trace(trace))

    def test_tee_and_rechunk_refuse_consumed_stream(self):
        stream = StreamedTrace.from_trace(synthetic(3, 6), 2)
        drain(stream)
        with pytest.raises(StateError):
            stream.tee(lambda c: None)
        with pytest.raises(StateError):
            stream.rechunk(3)

    def test_tee_sees_every_chunk_then_finish(self):
        trace = synthetic(3, 9)
        seen, done = [], []
        stream = StreamedTrace.from_trace(trace, 4).tee(
            seen.append, finish=done.append)
        chunks = drain(stream)
        assert seen == chunks
        assert done == [stream]

    def test_tee_abort_on_broken_producer(self):
        trace = synthetic(3, 6)
        aborted = []

        def broken():
            yield TraceChunk(0, trace.quanta[:2])
            raise RuntimeError("producer died")

        stream = StreamedTrace.from_trace(trace, 2)
        stream._chunks = broken()
        stream.tee(lambda c: None, abort=lambda: aborted.append(True))
        with pytest.raises(RuntimeError):
            drain(stream)
        assert aborted == [True]


class TestStreamingStoreStats:
    """Store-level invariant: stats count per stream() call, not per
    chunk, so they cannot depend on the consumer's chunk size."""

    def test_stats_invariant_to_chunk_size(self, tmp_path):
        from repro.runner.tracestore import StreamingTraceStore, TraceSpec

        spec = TraceSpec(ncpus=WORKLOAD["ncpus"], scale=WORKLOAD["scale"],
                         txns=WORKLOAD["txns"], seed=WORKLOAD["seed"])
        store = StreamingTraceStore(spill_dir=str(tmp_path))
        for _ in store.stream(spec).chunks():
            pass
        assert (store.stats.builds, store.stats.spills,
                store.stats.archive_streams) == (1, 1, 0)

        baseline = None
        for i, chunk_quanta in enumerate((1, 7, None), start=1):
            streamed = store.stream(spec, chunk_quanta=chunk_quanta)
            flat = [q for c in streamed.chunks() for q in c.quanta]
            sig = [(q.cpu, list(q.refs)) for q in flat]
            if baseline is None:
                baseline = sig
            else:
                assert sig == baseline
            assert (store.stats.builds, store.stats.spills,
                    store.stats.archive_streams) == (1, 1, i)
