"""Tests for the instruction code-path model."""

import random

import pytest

from repro.cpu.events import FLAG_INSTR, FLAG_KERNEL, FLAG_MASK
from repro.oltp.config import WorkloadConfig
from repro.trace.address_space import MemoryModel
from repro.trace.codepath import (
    KERNEL_ROUTINES,
    USER_ROUTINES,
    CodeModel,
    UnknownRoutineError,
)


def make(seed=4):
    config = WorkloadConfig.build(ncpus=1, scale=128, seed=seed)
    model = MemoryModel(config, seed=seed)
    return CodeModel(model, random.Random(seed)), model


class TestLayout:
    def test_all_routines_present(self):
        code, _ = make()
        for name in list(USER_ROUTINES) + list(KERNEL_ROUTINES):
            assert name in code.routines
            assert code.routine_lines(name) >= 1

    def test_sizes_proportional_to_weights(self):
        code, _ = make()
        parse = code.routine_lines("sql_parse")
        latch = code.routine_lines("latch_get")
        assert parse > latch

    def test_kernel_flagging(self):
        code, _ = make()
        assert code.is_kernel("ctx_switch")
        assert not code.is_kernel("sql_parse")

    def test_unknown_routine_raises(self):
        code, _ = make()
        with pytest.raises(UnknownRoutineError):
            code.routine_lines("nope")
        with pytest.raises(UnknownRoutineError):
            code.emit("nope", [])

    def test_routines_do_not_overlap(self):
        code, _ = make()
        seen = set()
        for name in code.routines:
            refs = set(code._encoded[name])
            assert not (refs & seen), f"{name} shares lines with another routine"
            seen |= refs


class TestEmission:
    def test_emit_marks_instruction_flag(self):
        code, _ = make()
        out = []
        code.emit("sql_parse", out)
        assert out
        assert all(ref & FLAG_INSTR for ref in out)
        assert not any(ref & FLAG_KERNEL for ref in out)

    def test_kernel_routine_marks_kernel_flag(self):
        code, _ = make()
        out = []
        code.emit("ctx_switch", out)
        assert all(ref & FLAG_KERNEL for ref in out)

    def test_emit_covers_at_least_half(self):
        code, _ = make()
        total = code.routine_lines("sql_execute")
        for _ in range(40):
            out = []
            code.emit("sql_execute", out)
            body = [r for r in out if (r >> 4) in
                    {x >> 4 for x in code._encoded["sql_execute"]}]
            assert total // 2 <= len(body) <= total

    def test_emit_starts_at_routine_head(self):
        code, _ = make()
        head = code._encoded["buf_get"][0]
        out = []
        code.emit("buf_get", out)
        assert out[0] == head

    def test_units_repeat(self):
        code, _ = make()
        single, triple = [], []
        code.emit("latch_get", single)
        code.emit("latch_get", triple, units=3)
        assert len(triple) >= 3 * (code.routine_lines("latch_get") // 2)

    def test_deterministic_given_seed(self):
        a, _ = make(seed=8)
        b, _ = make(seed=8)
        out_a, out_b = [], []
        for _ in range(20):
            a.emit("sql_parse", out_a)
            b.emit("sql_parse", out_b)
        assert out_a == out_b

    def test_occasional_cold_visits(self):
        code, model = make()
        hot = {r >> 4 for refs in code._encoded.values() for r in refs}
        out = []
        for _ in range(2000):
            code.emit("sql_execute", out)
        cold = [r for r in out if (r >> 4) not in hot]
        assert cold, "expected some cold-text excursions"
        # Cold refs are still instruction fetches.
        assert all(r & FLAG_INSTR for r in cold)
