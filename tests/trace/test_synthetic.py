"""Tests for the synthetic trace helpers."""

import pytest

from repro.cpu.events import decode, encode
from repro.trace.synthetic import make_trace, pingpong_trace, sweep_refs


def test_make_trace_packs_quanta():
    trace = make_trace(2, [(0, [encode(1)]), (1, [encode(2), encode(3)])])
    assert trace.ncpus == 2
    assert len(trace.quanta) == 2
    assert list(trace.quanta[1].refs) == [encode(2), encode(3)]


def test_make_trace_rejects_bad_cpu():
    with pytest.raises(ValueError):
        make_trace(2, [(2, [encode(1)])])


def test_sweep_refs():
    refs = sweep_refs(10, 3, write=True)
    assert [decode(r)[0] for r in refs] == [10, 11, 12]
    assert all(decode(r)[1] for r in refs)


def test_sweep_refs_instr():
    refs = sweep_refs(0, 2, instr=True)
    assert all(decode(r)[2] for r in refs)


def test_pingpong_alternates_cpus():
    trace = pingpong_trace(5, rounds=6)
    assert [q.cpu for q in trace.quanta] == [0, 1, 0, 1, 0, 1]
    for q in trace.quanta:
        line, write, *_ = decode(q.refs[0])
        assert line == 5 and write
