"""TopologySpec: validation, hop arithmetic, flatness, round trips."""

import json

import pytest

from repro.integrity.errors import ConfigError
from repro.params import LatencyTable
from repro.scenario.topology import UNIFORM, TopologySpec


class TestValidation:
    def test_default_is_uniform(self):
        assert UNIFORM.kind == "uniform"
        assert UNIFORM.is_flat

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            TopologySpec(kind="mesh")

    def test_islands_need_positive_group(self):
        with pytest.raises(ConfigError):
            TopologySpec(kind="islands", group_size=0)

    def test_negative_island_extra_rejected(self):
        with pytest.raises(ConfigError):
            TopologySpec(kind="islands", group_size=2, island_extra=-1)

    def test_chiplet_needs_distance_table(self):
        with pytest.raises(ConfigError):
            TopologySpec(kind="chiplet")

    def test_chiplet_distance_zero_must_be_free(self):
        with pytest.raises(ConfigError):
            TopologySpec(kind="chiplet", distance_extra=(5, 10))

    def test_chiplet_negative_extra_rejected(self):
        with pytest.raises(ConfigError):
            TopologySpec(kind="chiplet", distance_extra=(0, -10))

    def test_islands_must_tile_the_machine(self):
        spec = TopologySpec.islands(group_size=3, island_extra=50)
        with pytest.raises(ConfigError):
            spec.validate_for(8)
        spec.validate_for(6)  # tiles fine

    def test_uniform_fits_any_node_count(self):
        UNIFORM.validate_for(1)
        UNIFORM.validate_for(8)


class TestHopExtra:
    def test_uniform_never_charges(self):
        for a in range(8):
            for b in range(8):
                assert UNIFORM.hop_extra(a, b) == 0

    def test_islands_charge_across_groups_only(self):
        spec = TopologySpec.islands(group_size=4, island_extra=120)
        assert spec.hop_extra(0, 3) == 0       # same island
        assert spec.hop_extra(0, 4) == 120     # across
        assert spec.hop_extra(7, 1) == 120
        assert spec.hop_extra(5, 5) == 0       # self

    def test_chiplet_distance_clamps_to_table(self):
        spec = TopologySpec.chiplet(distance_extra=(0, 60, 140))
        assert spec.hop_extra(2, 2) == 0
        assert spec.hop_extra(2, 3) == 60
        assert spec.hop_extra(0, 2) == 140
        assert spec.hop_extra(0, 7) == 140     # beyond table: last entry

    def test_hop_extra_is_symmetric(self):
        for spec in (TopologySpec.islands(group_size=2, island_extra=75),
                     TopologySpec.chiplet(distance_extra=(0, 30, 80))):
            for a in range(8):
                for b in range(8):
                    assert spec.hop_extra(a, b) == spec.hop_extra(b, a)


class TestFlatness:
    def test_islands_with_zero_extra_is_flat(self):
        assert TopologySpec.islands(group_size=4, island_extra=0).is_flat
        assert not TopologySpec.islands(group_size=4, island_extra=1).is_flat

    def test_chiplet_all_zero_is_flat(self):
        assert TopologySpec.chiplet(distance_extra=(0, 0)).is_flat
        assert not TopologySpec.chiplet(distance_extra=(0, 10)).is_flat

    def test_base_table_does_not_affect_flatness(self):
        table = LatencyTable(30, 120, 200, 320, remote_upgrade=200)
        assert TopologySpec.uniform(base_table=table).is_flat


class TestRoundTrip:
    SPECS = [
        UNIFORM,
        TopologySpec.uniform(
            base_table=LatencyTable(25, 100, 180, 300, remote_upgrade=180)
        ),
        TopologySpec.islands(group_size=4, island_extra=120),
        TopologySpec.chiplet(distance_extra=(0, 60, 140)),
    ]

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.summary())
    def test_dict_round_trip_exact(self, spec):
        assert TopologySpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.summary())
    def test_json_round_trip_exact(self, spec):
        wire = json.loads(json.dumps(spec.to_dict()))
        assert TopologySpec.from_dict(wire) == spec

    def test_from_dict_tolerates_missing_keys(self):
        assert TopologySpec.from_dict({}) == UNIFORM
