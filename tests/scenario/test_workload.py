"""WorkloadSpec and ZipfSampler: validation, draw semantics, and the
property suite (mix normalization, seed determinism, skew accuracy,
exact serialization round trips)."""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.integrity.errors import ConfigError
from repro.scenario.workload import (
    BASELINE_WORKLOAD,
    TXN_KINDS,
    WorkloadSpec,
    ZipfSampler,
)


class TestValidation:
    def test_default_is_baseline(self):
        assert BASELINE_WORKLOAD.is_baseline
        assert BASELINE_WORKLOAD.tag == ""

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(name="  ")

    def test_empty_mix_rejected(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(mix=())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(mix=(("tpcb", 0.5), ("join", 0.5)))

    def test_repeated_kind_rejected(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(mix=(("tpcb", 0.5), ("tpcb", 0.5)))

    def test_mix_must_sum_to_one(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(mix=(("tpcb", 0.6), ("balance", 0.6)))
        with pytest.raises(ConfigError):
            WorkloadSpec(mix=(("tpcb", 0.5), ("balance", 0.4)))

    def test_nonpositive_fraction_rejected(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(mix=(("tpcb", 1.0), ("balance", 0.0)))

    def test_negative_skew_rejected(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(skew=-0.1)

    def test_local_account_prob_bounds(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(local_account_prob=0.0)
        with pytest.raises(ConfigError):
            WorkloadSpec(local_account_prob=1.5)

    def test_burst_floor(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(burst=0)

    def test_wire_lists_normalize_to_tuples(self):
        spec = WorkloadSpec(mix=[["tpcb", 0.5], ["scan", 0.5]])
        assert spec.mix == (("tpcb", 0.5), ("scan", 0.5))
        hash(spec)  # stays hashable


class TestDrawSemantics:
    def test_single_kind_mix_consumes_no_draw(self):
        """The baseline draw-sequence contract: a one-kind mix must not
        advance the rng, so baseline traces stay bit-identical."""
        rng_a, rng_b = random.Random(11), random.Random(11)
        assert BASELINE_WORKLOAD.draw_kind(rng_a) == "tpcb"
        assert rng_a.random() == rng_b.random()

    def test_multi_kind_mix_draws_only_listed_kinds(self):
        spec = WorkloadSpec(name="mix", mix=(("balance", 0.7), ("scan", 0.3)))
        rng = random.Random(3)
        kinds = {spec.draw_kind(rng) for _ in range(200)}
        assert kinds == {"balance", "scan"}

    def test_mix_frequencies_track_fractions(self):
        spec = WorkloadSpec(
            name="mix", mix=(("tpcb", 0.5), ("balance", 0.38), ("scan", 0.12))
        )
        rng = random.Random(17)
        n = 20_000
        counts = {k: 0 for k in TXN_KINDS}
        for _ in range(n):
            counts[spec.draw_kind(rng)] += 1
        for kind, frac in spec.mix:
            assert abs(counts[kind] / n - frac) < 0.02

    def test_fraction_lookup(self):
        spec = WorkloadSpec(name="mix", mix=(("balance", 0.7), ("scan", 0.3)))
        assert spec.fraction("balance") == 0.7
        assert spec.fraction("tpcb") == 0.0


class TestZipfSampler:
    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigError):
            ZipfSampler(0, 0.5)
        with pytest.raises(ConfigError):
            ZipfSampler(8, -0.5)

    def test_theta_zero_is_uniform(self):
        sampler = ZipfSampler(64, 0.0)
        rng = random.Random(5)
        counts = [0] * 64
        for _ in range(32_000):
            counts[sampler.sample(rng)] += 1
        assert min(counts) > 0
        assert max(counts) / min(counts) < 2.0

    def test_seed_determinism(self):
        sampler = ZipfSampler(128, 0.8)
        seq_a = [sampler.sample(random.Random(99)) for _ in range(1)]
        rng_a, rng_b = random.Random(42), random.Random(42)
        assert [sampler.sample(rng_a) for _ in range(500)] == [
            sampler.sample(rng_b) for _ in range(500)
        ]
        assert seq_a == [sampler.sample(random.Random(99))]

    def test_one_uniform_draw_per_sample(self):
        """The generator's draw-sequence contract: exactly one
        ``random()`` call per sample, whatever theta."""
        for theta in (0.0, 0.8):
            sampler = ZipfSampler(32, theta)
            rng_a, rng_b = random.Random(7), random.Random(7)
            sampler.sample(rng_a)
            rng_b.random()
            assert rng_a.random() == rng_b.random()

    @pytest.mark.parametrize("theta", [0.5, 0.8, 1.2])
    def test_empirical_skew_matches_expected_fraction(self, theta):
        """Hot-rank mass lands within tolerance of the analytic
        Zipf(theta) fraction (satellite acceptance: skew matches the
        configured theta)."""
        n, draws = 64, 20_000
        sampler = ZipfSampler(n, theta)
        rng = random.Random(1234)
        counts = [0] * n
        for _ in range(draws):
            counts[sampler.sample(rng)] += 1
        for rank in range(4):
            expected = sampler.expected_fraction(rank)
            assert abs(counts[rank] / draws - expected) < 0.02
        # Mass is monotone in rank for the hot head.
        assert counts[0] > counts[8] > counts[32]


# -- Hypothesis property suite ----------------------------------------------


@st.composite
def workload_specs(draw):
    """Arbitrary *valid* WorkloadSpecs: integer-weight mixes normalized
    to fractions that sum to 1 within tolerance."""
    kinds = draw(st.permutations(list(TXN_KINDS)))
    kinds = kinds[: draw(st.integers(1, len(TXN_KINDS)))]
    weights = [draw(st.integers(1, 100)) for _ in kinds]
    total = sum(weights)
    mix = tuple((k, w / total) for k, w in zip(kinds, weights))
    return WorkloadSpec(
        name=draw(st.sampled_from(["wl", "mix-a", "skewed"])),
        mix=mix,
        skew=draw(st.sampled_from([0.0, 0.2, 0.5, 0.8, 1.2])),
        local_account_prob=draw(st.sampled_from([0.5, 0.85, 1.0])),
        burst=draw(st.integers(1, 8)),
    )


@given(workload_specs())
@settings(max_examples=60, deadline=None)
def test_mix_always_sums_to_one(spec):
    assert abs(sum(frac for _, frac in spec.mix) - 1.0) <= 1e-9


@given(workload_specs())
@settings(max_examples=60, deadline=None)
def test_dict_round_trip_exact(spec):
    """to_dict/from_dict is an *exact* inverse (no float drift), even
    through a JSON wire hop — the job-hash stability contract."""
    assert WorkloadSpec.from_dict(spec.to_dict()) == spec
    wire = json.loads(json.dumps(spec.to_dict()))
    assert WorkloadSpec.from_dict(wire) == spec


@given(workload_specs())
@settings(max_examples=60, deadline=None)
def test_tag_is_stable_and_key_safe(spec):
    assert spec.tag == WorkloadSpec.from_dict(spec.to_dict()).tag
    assert all(c.isalnum() or c == "-" for c in spec.tag)


@given(workload_specs(), st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_draw_kind_is_seed_deterministic(spec, seed):
    rng_a, rng_b = random.Random(seed), random.Random(seed)
    assert [spec.draw_kind(rng_a) for _ in range(50)] == [
        spec.draw_kind(rng_b) for _ in range(50)
    ]


@given(st.integers(1, 256), st.sampled_from([0.0, 0.4, 0.9, 1.5]),
       st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_zipf_sampler_in_range_and_deterministic(n, theta, seed):
    sampler = ZipfSampler(n, theta)
    rng_a, rng_b = random.Random(seed), random.Random(seed)
    seq = [sampler.sample(rng_a) for _ in range(64)]
    assert all(0 <= rank < n for rank in seq)
    assert seq == [sampler.sample(rng_b) for _ in range(64)]
