"""Scenario differential cells: every (workload, topology) pair must
replay value-identically on every capable engine.

Two layers:

* a synthetic (workload-independent) topology cross — islands/chiplet
  extras on the staged pipeline vs the scalar engines, including the
  flat-equivalence contract (zero extras == uniform, bit for bit);
* registry-driven cells — each registered scenario's own workload and
  topology, generated through the real OLTP trace generator and
  replayed on its fully-integrated ladder rung by all engines that
  support its processor count.
"""

import pytest

from repro.core.machine import MachineConfig
from repro.core.system import System, simulate
from repro.params import KB
from repro.scenario import all_scenarios, get_scenario
from repro.scenario.topology import UNIFORM, TopologySpec
from repro.trace.generator import build_trace

from tests.core.test_differential import (
    mp_machine,
    run_all_engines,
    run_mp_engines,
    synthetic_mp_trace,
)

TOPOLOGIES = {
    "uniform": UNIFORM,
    "islands": TopologySpec.islands(group_size=2, island_extra=100),
    "chiplet": TopologySpec.chiplet(distance_extra=(0, 40, 90)),
}


class TestTopologyEngineEquivalence:
    """Non-flat topologies force the staged pipeline into stream mode;
    its payloads must still match the scalar engines exactly."""

    @pytest.mark.parametrize("rac", [None, 256 * KB], ids=["norac", "rac"])
    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    def test_runresults_identical(self, topology, rac):
        machine = mp_machine(4, rac_size=rac).with_(
            topology=TOPOLOGIES[topology]
        )
        trace = synthetic_mp_trace(21, 4)
        results = run_mp_engines(machine, trace)
        assert results["vectorized-mp"] == results["fast"]
        assert results["fast"] == results["general"]

    def test_zero_extra_topologies_are_flat_equivalent(self):
        """An islands/chiplet spec whose extras are all zero is the
        uniform machine, bit for bit — the guarantee that lets the
        engines keep their exact pre-topology fast paths."""
        trace = synthetic_mp_trace(23, 4)
        machine = mp_machine(4)
        baseline = simulate(machine, trace).to_dict()
        baseline.pop("machine")  # the topology block itself differs
        for spec in (TopologySpec.islands(group_size=2, island_extra=0),
                     TopologySpec.chiplet(distance_extra=(0, 0))):
            got = simulate(machine.with_(topology=spec), trace).to_dict()
            got.pop("machine")
            assert got == baseline, spec.summary()

    def test_nonflat_topology_slows_remote_traffic(self):
        """Sanity: island extras must actually show up in the clock
        (guards against a topology that parses but never reaches the
        interconnect arithmetic)."""
        trace = synthetic_mp_trace(25, 4)
        machine = mp_machine(4)
        flat = simulate(machine, trace)
        isles = simulate(
            machine.with_(topology=TOPOLOGIES["islands"]), trace
        )
        assert isles.breakdown.total > flat.breakdown.total
        assert isles.misses.as_dict() == flat.misses.as_dict()


def scenario_trace(scenario, *, txns=8, seed=31):
    """A small real OLTP trace in the scenario's workload."""
    return build_trace(ncpus=scenario.ncpus, scale=64, txns=txns,
                       warmup_txns=10, seed=seed,
                       workload=scenario.workload)


@pytest.mark.parametrize(
    "name", [s.name for s in all_scenarios()]
)
def test_registered_scenario_engines_identical(name):
    """Acceptance cell: the scenario's own workload × topology, on its
    fully-integrated ladder rung (the RAC rung when it has one),
    replays value-identically across every capable engine."""
    scenario = get_scenario(name)
    machine = scenario.machines(scale=64)[-1][1]
    trace = scenario_trace(scenario)
    if scenario.ncpus == 1:
        results = run_all_engines(machine, trace)
        assert results["vectorized"] == results["fast"]
    else:
        results = run_mp_engines(machine, trace)
        assert results["vectorized-mp"] == results["fast"]
    assert results["fast"] == results["general"]


def test_workload_changes_the_trace_not_the_contract():
    """Different workloads on the same seed produce different traces
    (the mix/skew axes are live), while the baseline scenario's trace
    is byte-identical to a plain build_trace call (the bit-identity
    contract for the paper's own points)."""
    base = get_scenario("tpcb-uni")
    zipf = get_scenario("zipf-uni")
    t_base = scenario_trace(base)
    t_plain = build_trace(ncpus=1, scale=64, txns=8, warmup_txns=10, seed=31)
    t_zipf = scenario_trace(zipf)
    flat = lambda t: [(q.cpu, tuple(q.refs)) for q in t.quanta]
    assert flat(t_base) == flat(t_plain)
    assert flat(t_base) != flat(t_zipf)


def test_read_heavy_mix_shifts_write_share():
    """The read-heavy mix must produce measurably fewer writes than
    TPC-B — the workload axis reaches the reference stream itself."""
    from repro.cpu.events import decode

    def write_share(trace):
        writes = total = 0
        for quantum in trace.quanta:
            for ref in quantum.refs:
                total += 1
                writes += decode(ref)[1]
        return writes / total

    tpcb = write_share(scenario_trace(get_scenario("tpcb-uni")))
    ro = write_share(scenario_trace(get_scenario("read-heavy-uni")))
    assert ro < tpcb * 0.7
