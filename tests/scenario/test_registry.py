"""Scenario registry: lookups, fail-fast errors, ladders, hashing,
and service-spec expansion."""

import json

import pytest

from repro.integrity.errors import ConfigError
from repro.scenario import (
    Scenario,
    all_scenarios,
    describe_scenario,
    get_scenario,
    scenario_names,
)
from repro.scenario.registry import jobs_for_scenario_spec
from repro.scenario.topology import TopologySpec
from repro.scenario.workload import WorkloadSpec


class TestRegistry:
    def test_at_least_five_scenarios_registered(self):
        assert len(scenario_names()) >= 5

    def test_names_cover_workload_and_topology_axes(self):
        names = scenario_names()
        assert "tpcb-uni" in names          # paper baseline
        assert "zipf-uni" in names          # skew axis
        assert "islands-mp8" in names       # topology axis
        scenarios = {s.name: s for s in all_scenarios()}
        assert any(len(s.workload.mix) > 1 for s in scenarios.values())
        assert any(not s.topology.is_flat for s in scenarios.values())
        assert any(s.workload.burst > 1 for s in scenarios.values())

    def test_get_scenario_round_trips_names(self):
        for name in scenario_names():
            assert get_scenario(name).name == name

    def test_unknown_name_fails_fast_listing_the_menu(self):
        with pytest.raises(ConfigError) as exc:
            get_scenario("no-such-scenario")
        message = str(exc.value)
        assert "no-such-scenario" in message
        for name in scenario_names():
            assert name in message

    def test_baselines_are_bit_identical_specs(self):
        for name in ("tpcb-uni", "tpcb-mp8"):
            scenario = get_scenario(name)
            assert scenario.workload.is_baseline
            assert scenario.topology.is_flat

    def test_describe_mentions_the_ladder(self):
        text = describe_scenario("chiplet-mp8")
        assert "chiplet-mp8" in text
        assert "ladder" in text
        assert text.count("- ") >= 4  # Base, L2+MC, All, All+RAC


class TestScenarioValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(ConfigError):
            Scenario("", "nameless")

    def test_wrong_spec_types_rejected(self):
        with pytest.raises(ConfigError):
            Scenario("s", "d", workload={"name": "tpcb"})
        with pytest.raises(ConfigError):
            Scenario("s", "d", topology="uniform")

    def test_rac_needs_multiprocessor(self):
        with pytest.raises(ConfigError):
            Scenario("s", "d", ncpus=1, rac_bytes=1024)

    def test_topology_must_fit_machine(self):
        with pytest.raises(ConfigError):
            Scenario("s", "d", ncpus=8,
                     topology=TopologySpec.islands(group_size=3,
                                                   island_extra=50))

    @pytest.mark.parametrize("name", ["tpcb-uni", "zipf-uni", "islands-mp8",
                                      "tpcc-mix-mp8", "chiplet-mp8"])
    def test_dict_round_trip_exact(self, name):
        scenario = get_scenario(name)
        assert Scenario.from_dict(scenario.to_dict()) == scenario
        wire = json.loads(json.dumps(scenario.to_dict()))
        assert Scenario.from_dict(wire) == scenario

    def test_from_dict_malformed_maps_to_config_error(self):
        with pytest.raises(ConfigError):
            Scenario.from_dict({"description": "missing name"})
        with pytest.raises(ConfigError):
            Scenario.from_dict({"name": "s", "ncpus": "many"})


class TestLadder:
    def test_ladder_labels_and_topology(self):
        scenario = get_scenario("islands-mp8")
        machines = scenario.machines(scale=64)
        assert len(machines) == 3
        for _, machine in machines:
            assert machine.topology == scenario.topology
            assert machine.ncpus == 8

    def test_rac_scenario_gets_fourth_rung(self):
        machines = get_scenario("chiplet-mp8").machines(scale=64)
        assert len(machines) == 4
        assert machines[-1][1].rac_size == 8 * 1024 * 1024

    def test_jobs_are_content_addressed_and_stable(self):
        """Hash stability contract: the same scenario resolves to the
        same job hashes on every call (and, by construction of the
        canonical payload, in every process)."""
        a = get_scenario("zipf-uni").jobs(scale=64, txns=20)
        b = get_scenario("zipf-uni").jobs(scale=64, txns=20)
        assert [j.content_hash() for j in a] == [j.content_hash() for j in b]
        assert len({j.content_hash() for j in a}) == len(a)

    def test_workload_and_topology_reach_the_job_hash(self):
        base = get_scenario("tpcb-mp8").jobs(scale=64, txns=20)
        skew = get_scenario("bursty-mp8").jobs(scale=64, txns=20)
        isles = get_scenario("islands-mp8").jobs(scale=64, txns=20)
        base_hashes = {j.content_hash() for j in base}
        assert base_hashes.isdisjoint(j.content_hash() for j in skew)
        assert base_hashes.isdisjoint(j.content_hash() for j in isles)


class TestServiceSpecExpansion:
    def test_expands_to_the_ladder(self):
        jobs = jobs_for_scenario_spec({"scenario": "tpcb-uni", "txns": 10})
        assert len(jobs) == 3
        assert all(j.spec.txns == 10 for j in jobs)

    def test_defaults_mirror_quick_settings(self):
        jobs = jobs_for_scenario_spec({"scenario": "tpcb-uni"})
        assert jobs[0].spec.scale == 64
        assert jobs[0].spec.txns == 120

    def test_unknown_scenario_is_config_error(self):
        with pytest.raises(ConfigError) as exc:
            jobs_for_scenario_spec({"scenario": "nope"})
        assert "tpcb-uni" in str(exc.value)

    def test_missing_or_nonstring_name_rejected(self):
        with pytest.raises(ConfigError):
            jobs_for_scenario_spec({})
        with pytest.raises(ConfigError):
            jobs_for_scenario_spec({"scenario": 3})

    def test_malformed_sizes_rejected(self):
        with pytest.raises(ConfigError):
            jobs_for_scenario_spec({"scenario": "tpcb-uni", "txns": "lots"})
        with pytest.raises(ConfigError):
            jobs_for_scenario_spec({"scenario": "tpcb-uni", "check": "extreme"})


def test_lazy_package_exports():
    """The package exposes registry names lazily (import acyclicity)."""
    import repro.scenario as pkg

    assert pkg.get_scenario is get_scenario
    with pytest.raises(AttributeError):
        pkg.does_not_exist
