"""System-level tests for the CMP and victim-buffer extensions."""

import pytest

from repro.core.machine import MachineConfig
from repro.core.system import simulate
from repro.cpu.events import encode
from repro.params import MB, VICTIM_HIT_EXTRA
from repro.trace.synthetic import make_trace

PAGE = 256


def cmp_machine(num_nodes=2, cores=2, l2_size=64 * 1024, l2_assoc=2):
    return MachineConfig.chip_multiprocessor(
        num_nodes, cores_per_node=cores, l2_size=l2_size, l2_assoc=l2_assoc, scale=1
    )


class TestCmpValidation:
    def test_num_nodes(self):
        m = cmp_machine(4, 2)
        assert m.ncpus == 8 and m.num_nodes == 4

    def test_rejects_indivisible_cores(self):
        with pytest.raises(ValueError):
            MachineConfig(label="x", ncpus=6, cores_per_node=4)

    def test_rejects_offchip_cmp(self):
        with pytest.raises(ValueError):
            MachineConfig(label="x", ncpus=4, cores_per_node=2)

    def test_single_node_cmp_allows_no_rac(self):
        with pytest.raises(ValueError):
            MachineConfig.chip_multiprocessor(1, cores_per_node=2).with_(
                rac_size=8 * MB
            )


class TestCmpSemantics:
    def test_cores_share_the_l2(self):
        # Core 0 (cpu 0) loads a line homed at node 0; core 1 (cpu 1)
        # then reads it: L1 miss but shared-L2 hit, no new L2 miss.
        machine = cmp_machine(2, 2)
        trace = make_trace(4, [(0, [encode(0)]), (1, [encode(0)])], page_bytes=PAGE)
        r = simulate(machine, trace)
        assert r.misses.total == 1
        assert r.breakdown.l2_hit == machine.latencies.l2_hit

    def test_intra_node_sharing_avoids_3hop(self):
        # Write by cpu 0, read by cpu 1 (same chip): stays on-chip.
        # The same pattern across chips (cpu 0 then cpu 2) is 3-hop.
        machine = cmp_machine(2, 2)
        same_chip = make_trace(
            4, [(0, [encode(8, write=True)]), (1, [encode(8)])], page_bytes=PAGE
        )
        r = simulate(machine, same_chip)
        assert r.misses.d_remote_dirty == 0

        cross_chip = make_trace(
            4, [(0, [encode(8, write=True)]), (2, [encode(8)])], page_bytes=PAGE
        )
        r = simulate(cmp_machine(2, 2), cross_chip)
        assert r.misses.d_remote_dirty == 1

    def test_intra_node_write_invalidates_sibling_l1(self):
        # cpu0 and cpu1 share the L2.  cpu1 reads a line (in its L1);
        # cpu0 writes it; cpu1's next read must go back to the L2.
        machine = cmp_machine(2, 2)
        trace = make_trace(
            4,
            [
                (1, [encode(0)]),                 # cpu1 L1+L2 fill
                (0, [encode(0, write=True)]),     # cpu0 write (L2 hit)
                (1, [encode(0)]),                 # cpu1: L1 was invalidated
            ],
            page_bytes=PAGE,
        )
        r = simulate(machine, trace)
        # miss, L2-hit (write), L2-hit (re-read after invalidation)
        assert r.misses.total == 1
        assert r.breakdown.l2_hit == 2 * machine.latencies.l2_hit

    def test_per_cpu_timing_separate(self):
        machine = cmp_machine(2, 2)
        trace = make_trace(4, [(0, [encode(0)]), (3, [encode(100)])], page_bytes=PAGE)
        r = simulate(machine, trace)
        busy_cpus = [b for b in r.per_cpu if b.total > 0]
        assert len(busy_cpus) == 2


class TestVictimBufferSystem:
    def machine(self, vb):
        return MachineConfig.fully_integrated(
            1, l2_size=1024, l2_assoc=1, victim_entries=vb, scale=1
        )

    def test_victim_hit_latency(self):
        machine = self.machine(vb=4)
        nsets = 1024 // 64  # 16 sets, direct-mapped
        a, b = 0, nsets  # conflict pair in L2
        # L1 is large; use instruction stream on one line and data on
        # conflicting lines to defeat the L1: pick a tiny trace where
        # the L1 cannot hold: use l1-conflicting lines too.
        l1_lines = machine.scaled_l1_size // (2 * 64)
        a, b = 0, l1_lines * 2  # conflict in both L1 set 0 and L2 set 0?
        # Ensure L2 conflict: both multiples of nsets.
        a, b = 0, nsets * l1_lines  # same L1 set and same L2 set
        refs = [encode(a), encode(b), encode(a), encode(b)]
        trace = make_trace(1, [(0, refs)], page_bytes=PAGE)
        r = simulate(machine, trace)
        lat = machine.latencies
        # 2 cold misses, then 2 victim-buffer swap hits.
        assert r.misses.total == 2
        assert r.breakdown.l2_hit == 2 * (lat.l2_hit + VICTIM_HIT_EXTRA)

    def test_without_buffer_same_pattern_misses(self):
        machine = self.machine(vb=0).with_(victim_entries=0)
        nsets = 1024 // 64
        l1_lines = machine.scaled_l1_size // (2 * 64)
        a, b = 0, nsets * l1_lines
        refs = [encode(a), encode(b), encode(a), encode(b)]
        trace = make_trace(1, [(0, refs)], page_bytes=PAGE)
        r = simulate(machine, trace)
        assert r.misses.total == 4  # pure conflict thrash

    def test_label_mentions_buffer(self):
        assert "+VB16" in MachineConfig.fully_integrated(
            1, victim_entries=16
        ).label


class TestGeneralLoopEquivalence:
    """The fast loop and the general loop implement the same machine."""

    @staticmethod
    def _random_trace(seed, ncpus=2):
        import random

        rng = random.Random(seed)
        quanta = []
        for _ in range(60):
            cpu = rng.randrange(ncpus)
            refs = []
            for _ in range(rng.randint(1, 25)):
                instr = rng.random() < 0.4
                refs.append(
                    encode(
                        rng.randrange(80),
                        write=(not instr) and rng.random() < 0.4,
                        instr=instr,
                        kernel=rng.random() < 0.2,
                    )
                )
            quanta.append((cpu, refs))
        return make_trace(ncpus, quanta, page_bytes=PAGE)

    @pytest.mark.parametrize("seed", [1, 7, 23, 99])
    @pytest.mark.parametrize("geometry", [(2048, 1), (4096, 2)])
    def test_loops_agree(self, seed, geometry):
        from repro.core.system import System

        l2_size, l2_assoc = geometry
        machine = MachineConfig.base(2, l2_size=l2_size, l2_assoc=l2_assoc, scale=1)
        fast = System(machine).run(self._random_trace(seed))
        general = System(machine, force_general=True).run(self._random_trace(seed))
        assert fast.breakdown.total == general.breakdown.total
        assert fast.misses.as_dict() == general.misses.as_dict()
        assert fast.protocol.upgrades == general.protocol.upgrades
        assert fast.l1.i_misses == general.l1.i_misses

    def test_loops_agree_with_warmup(self):
        from repro.core.system import System

        machine = MachineConfig.base(2, l2_size=2048, l2_assoc=1, scale=1)
        t1 = self._random_trace(5)
        t1.warmup_quanta = 20
        t2 = self._random_trace(5)
        t2.warmup_quanta = 20
        fast = System(machine).run(t1)
        general = System(machine, force_general=True).run(t2)
        assert fast.breakdown.total == general.breakdown.total
        assert fast.misses.as_dict() == general.misses.as_dict()


class TestTlbSystem:
    def test_perfect_tlb_charges_nothing(self):
        machine = MachineConfig.base(1, l2_size=4096, l2_assoc=2, scale=1)
        trace = make_trace(1, [(0, [encode(i) for i in range(32)])], page_bytes=PAGE)
        r = simulate(machine, trace)
        assert r.tlb_misses == 0

    def test_tlb_miss_counted_and_charged_as_kernel_busy(self):
        machine = MachineConfig.base(1, l2_size=4096, l2_assoc=2, scale=1).with_(
            tlb_entries=2
        )
        # Lines on 3 distinct pages (4 lines/page), cycled twice: with
        # 2 entries the third page always evicts the next one needed.
        refs = [encode(line) for line in (0, 4, 8, 0, 4, 8)]
        trace = make_trace(1, [(0, refs)], page_bytes=PAGE)
        r = simulate(machine, trace)
        assert r.tlb_misses == 6  # LRU thrash: every access misses
        from repro.params import TLB_WALK_CYCLES

        assert r.breakdown.kernel_busy == 6 * TLB_WALK_CYCLES

    def test_large_tlb_only_cold_misses(self):
        machine = MachineConfig.base(1, l2_size=4096, l2_assoc=2, scale=1).with_(
            tlb_entries=64
        )
        refs = [encode(line) for line in (0, 4, 8, 0, 4, 8)]
        trace = make_trace(1, [(0, refs)], page_bytes=PAGE)
        r = simulate(machine, trace)
        assert r.tlb_misses == 3  # one per page

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineConfig.base(1).with_(tlb_entries=-1)
