"""Tests for RunResult derived metrics."""

import pytest

from repro.core.machine import MachineConfig
from repro.core.results import RunResult
from repro.stats.breakdown import (
    ExecutionBreakdown,
    L1Stats,
    MissBreakdown,
    ProtocolStats,
    RacStats,
)


def make_result(busy=20.0, l2_hit=30.0, local=25.0, rem_dirty=25.0,
                ncpus=2, txns=10, kernel=5.0):
    total = ExecutionBreakdown(
        busy=busy, kernel_busy=kernel, l2_hit=l2_hit,
        local_stall=local, remote_dirty_stall=rem_dirty,
    )
    per_cpu = [total] * ncpus  # shape only; exec_time divides by count
    return RunResult(
        machine=MachineConfig.base(ncpus),
        breakdown=total,
        per_cpu=per_cpu,
        misses=MissBreakdown(i_local=2, d_remote_dirty=6, d_local=2),
        l1=L1Stats(i_refs=100, i_misses=10),
        protocol=ProtocolStats(invalidations=4, writes=16),
        rac=RacStats(),
        measured_txns=txns,
    )


def test_exec_time_is_per_cpu_average():
    r = make_result(ncpus=2)
    assert r.exec_time == r.breakdown.total / 2


def test_cycles_per_txn():
    r = make_result(txns=10)
    assert r.cycles_per_txn == r.breakdown.total / 10
    r0 = make_result(txns=0)
    assert r0.cycles_per_txn == 0.0


def test_l2_misses():
    assert make_result().l2_misses == 10


def test_kernel_fraction():
    r = make_result(busy=20.0, kernel=5.0)
    assert r.kernel_fraction == 0.25


def test_speedup_over():
    slow = make_result(busy=200.0)
    fast = make_result()
    assert fast.speedup_over(slow) == pytest.approx(
        slow.exec_time / fast.exec_time
    )


def test_speedup_rejects_zero_time():
    zero = make_result(busy=0, l2_hit=0, local=0, rem_dirty=0, kernel=0)
    with pytest.raises(ValueError):
        zero.speedup_over(make_result())


def test_summary_mentions_label_and_components():
    s = make_result().summary()
    assert "Base 8M1w" in s
    assert "cyc/txn" in s and "3-hop" in s


def test_label_comes_from_machine():
    assert make_result().label == "Base 8M1w"
