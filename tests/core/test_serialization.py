"""Exact dict/JSON round trips for MachineConfig and RunResult.

The campaign result cache and the worker-pool boundary both move
results as ``to_dict()`` payloads, so the round trip must be *exact*:
every field — floats included — reconstructs value-identical, which is
what makes parallel and cached campaign output bit-identical to
serial simulation.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.core.machine import MachineConfig
from repro.core.results import RunResult
from repro.core.system import simulate
from repro.params import MB

SCALE = 128

MACHINES = [
    MachineConfig.conservative_base(1, scale=SCALE),
    MachineConfig.base(1, scale=SCALE),
    MachineConfig.integrated_l2(1, scale=SCALE),
    MachineConfig.integrated_l2_mc(1, scale=SCALE, cpu_model="ooo"),
    MachineConfig.base(8, scale=SCALE),
    MachineConfig.fully_integrated(8, scale=SCALE),
    MachineConfig.fully_integrated(
        8, l2_size=1 * MB, l2_assoc=4, rac_size=8 * MB,
        replicate_code=True, scale=SCALE,
    ),
    MachineConfig.fully_integrated(
        8, l2_assoc=1, victim_entries=16, scale=SCALE
    ),
    MachineConfig.chip_multiprocessor(4, cores_per_node=2, scale=SCALE),
]


class TestMachineConfigRoundTrip:
    @pytest.mark.parametrize(
        "machine", MACHINES, ids=lambda m: m.label.replace(" ", "_")
    )
    def test_dict_round_trip(self, machine):
        assert MachineConfig.from_dict(machine.to_dict()) == machine

    @pytest.mark.parametrize(
        "machine", MACHINES, ids=lambda m: m.label.replace(" ", "_")
    )
    def test_json_round_trip(self, machine):
        wire = json.loads(json.dumps(machine.to_dict()))
        assert MachineConfig.from_dict(wire) == machine

    def test_topology_base_table_round_trips(self):
        from repro.scenario.topology import TopologySpec

        base = MachineConfig.fully_integrated(8, scale=SCALE)
        bumped = base.with_(topology=TopologySpec.uniform(
            base_table=replace(base.latencies, remote_dirty=997)
        ))
        clone = MachineConfig.from_dict(bumped.to_dict())
        assert clone == bumped
        assert clone.latencies.remote_dirty == 997

    def test_islands_topology_round_trips(self):
        from repro.scenario.topology import TopologySpec

        machine = MachineConfig.fully_integrated(8, scale=SCALE).with_(
            topology=TopologySpec.islands(group_size=2, island_extra=80)
        )
        wire = json.loads(json.dumps(machine.to_dict()))
        assert MachineConfig.from_dict(wire) == machine

    def test_tlb_entries_round_trip(self):
        machine = MachineConfig.fully_integrated(8, scale=SCALE).with_(
            tlb_entries=128
        )
        assert MachineConfig.from_dict(machine.to_dict()) == machine

    def test_from_dict_validates(self):
        from repro.integrity.errors import ConfigError

        payload = MachineConfig.base(1, scale=SCALE).to_dict()
        payload["l2_assoc"] = -3
        with pytest.raises(ConfigError):
            MachineConfig.from_dict(payload)


@pytest.fixture(scope="module")
def uni_result(uni_trace):
    return simulate(MachineConfig.integrated_l2(1, scale=SCALE), uni_trace)


@pytest.fixture(scope="module")
def mp_result(mp8_trace):
    # RAC + replication + victim entries so the optional stat blocks
    # (rac, protocol, network) are all populated.
    machine = MachineConfig.fully_integrated(
        8, l2_size=1 * MB, l2_assoc=4, rac_size=8 * MB,
        replicate_code=True, scale=SCALE,
    )
    return simulate(machine, mp8_trace)


class TestRunResultRoundTrip:
    def test_uni_dict_round_trip_is_exact(self, uni_result):
        clone = RunResult.from_dict(uni_result.to_dict())
        assert clone.to_dict() == uni_result.to_dict()
        assert clone.exec_time == uni_result.exec_time
        assert clone.cycles_per_txn == uni_result.cycles_per_txn
        assert clone.machine == uni_result.machine

    def test_mp_dict_round_trip_is_exact(self, mp_result):
        clone = RunResult.from_dict(mp_result.to_dict())
        assert clone.to_dict() == mp_result.to_dict()
        assert clone.misses == mp_result.misses
        assert clone.rac == mp_result.rac
        assert clone.protocol == mp_result.protocol
        assert clone.network == mp_result.network

    def test_json_round_trip_preserves_floats(self, mp_result):
        # JSON text is the real wire/cache format, so go through it.
        wire = json.loads(json.dumps(mp_result.to_dict()))
        clone = RunResult.from_dict(wire)
        assert clone.exec_time == mp_result.exec_time
        assert clone.breakdown == mp_result.breakdown
        assert clone.per_cpu == mp_result.per_cpu
        assert clone.to_dict() == mp_result.to_dict()

    def test_derived_metrics_match(self, mp_result):
        clone = RunResult.from_dict(mp_result.to_dict())
        assert clone.misses.dirty_share == mp_result.misses.dirty_share
        assert clone.rac.hit_rate == mp_result.rac.hit_rate
