"""System-level tests with hand-built traces: exact latency accounting."""

import pytest

from repro.core.machine import MachineConfig
from repro.core.system import System, simulate
from repro.cpu.events import encode
from repro.params import INSTRS_PER_ILINE, MB
from repro.trace.synthetic import make_trace

# Test machines use scale=1: logical sizes are simulated directly.
# Small explicit caches keep the arithmetic easy to reason about.
PAGE = 256  # 4 lines per page


def uni(l2_size=64 * 1024, l2_assoc=2, **kw):
    return MachineConfig.base(1, l2_size=l2_size, l2_assoc=l2_assoc, scale=1, **kw)


def mp(ncpus=2, **kw):
    kw.setdefault("l2_size", 64 * 1024)
    kw.setdefault("l2_assoc", 2)
    return MachineConfig.base(ncpus, scale=1, **kw)


class TestUniprocessorAccounting:
    def test_cold_data_miss_charges_local_latency(self):
        trace = make_trace(1, [(0, [encode(5)])], page_bytes=PAGE)
        r = simulate(uni(), trace)
        assert r.breakdown.local_stall == 100  # Base 1-way... assoc=2 -> still local=100
        assert r.misses.total == 1
        assert r.misses.d_local == 1

    def test_l1_hit_is_free(self):
        trace = make_trace(1, [(0, [encode(5), encode(5)])], page_bytes=PAGE)
        r = simulate(uni(), trace)
        assert r.breakdown.local_stall == 100  # only the first access missed
        assert r.misses.total == 1

    def test_l2_hit_charges_l2_latency(self):
        # L1 in a scale=1 machine is 128 KB (relief x2): pick conflicting
        # lines.  L1 sets = 128K/(2*64) = 1024; lines 0, 1024, 2048 share
        # L1 set 0; L2 (64K, 2-way) sets = 512, so they do NOT collide
        # in L2 (0, 0+1024%512=0... they do collide).  Use a big L2.
        machine = uni(l2_size=1 * MB, l2_assoc=8)
        l1_lines = machine.scaled_l1_size // (2 * 64)
        a, b, c = 5, 5 + l1_lines, 5 + 2 * l1_lines
        refs = [encode(a), encode(b), encode(c), encode(a)]
        trace = make_trace(1, [(0, refs)], page_bytes=PAGE)
        r = simulate(machine, trace)
        # Three cold misses plus one L2 hit for the return to `a`.
        assert r.misses.total == 3
        lat = machine.latencies
        assert r.breakdown.local_stall == 3 * lat.local
        assert r.breakdown.l2_hit == lat.l2_hit

    def test_instruction_busy_time(self):
        refs = [encode(7, instr=True), encode(7, instr=True)]
        trace = make_trace(1, [(0, refs)], page_bytes=PAGE)
        r = simulate(uni(), trace)
        assert r.breakdown.busy == 2 * INSTRS_PER_ILINE
        assert r.misses.instruction == 1

    def test_kernel_busy_tracked(self):
        refs = [encode(7, instr=True, kernel=True), encode(8, instr=True)]
        trace = make_trace(1, [(0, refs)], page_bytes=PAGE)
        r = simulate(uni(), trace)
        assert r.breakdown.kernel_busy == INSTRS_PER_ILINE
        assert r.breakdown.busy == 2 * INSTRS_PER_ILINE

    def test_uniprocessor_never_remote(self):
        refs = [encode(i, write=(i % 2 == 0)) for i in range(64)]
        trace = make_trace(1, [(0, refs)], page_bytes=PAGE)
        r = simulate(uni(), trace)
        assert r.breakdown.remote_stall == 0
        assert r.misses.remote == 0


class TestMultiprocessorClassification:
    def test_remote_clean_read(self):
        # Line 4 -> page 1 -> home node 1; read from node 0.
        trace = make_trace(2, [(0, [encode(4)])], page_bytes=PAGE)
        machine = mp()
        r = simulate(machine, trace)
        assert r.misses.d_remote_clean == 1
        assert r.breakdown.remote_clean_stall == machine.latencies.remote_clean

    def test_local_read(self):
        trace = make_trace(2, [(0, [encode(0)])], page_bytes=PAGE)
        r = simulate(mp(), trace)
        assert r.misses.d_local == 1

    def test_three_hop_dirty_read(self):
        # Node 0 writes line 8 (home 0: page 2 % 2); node 1 reads it.
        trace = make_trace(
            2, [(0, [encode(8, write=True)]), (1, [encode(8)])], page_bytes=PAGE
        )
        machine = mp()
        r = simulate(machine, trace)
        assert r.misses.d_remote_dirty == 1
        assert r.breakdown.remote_dirty_stall == machine.latencies.remote_dirty

    def test_migratory_write_pingpong(self):
        quanta = []
        for turn in range(6):
            quanta.append((turn % 2, [encode(8, write=True)]))
        trace = make_trace(2, quanta, page_bytes=PAGE)
        r = simulate(mp(), trace)
        # First access is a plain miss; all 5 subsequent are 3-hop.
        assert r.misses.d_remote_dirty == 5
        assert r.protocol.invalidations == 5

    def test_upgrade_on_write_hit(self):
        # Node 0 and 1 both read line 8 (shared); node 0 then writes it.
        trace = make_trace(
            2,
            [(0, [encode(8)]), (1, [encode(8)]), (0, [encode(8, write=True)])],
            page_bytes=PAGE,
        )
        machine = mp()
        r = simulate(machine, trace)
        assert r.protocol.upgrades == 1
        assert r.protocol.invalidations == 1
        # Upgrade at the local home stalls for the local latency.
        assert r.breakdown.local_stall == machine.latencies.local * 2  # 2 fills
        # Misses: two demand fills only (the upgrade is not a miss).
        assert r.misses.total == 2

    def test_read_shared_line_stays_everywhere(self):
        trace = make_trace(
            2, [(0, [encode(8)]), (1, [encode(8)]), (0, [encode(8)])], page_bytes=PAGE
        )
        r = simulate(mp(), trace)
        assert r.misses.total == 2  # third access hits node 0's L1

    def test_instruction_misses_classified_remote(self):
        trace = make_trace(2, [(0, [encode(4, instr=True)])], page_bytes=PAGE)
        r = simulate(mp(), trace)
        assert r.misses.i_remote == 1


class TestReplication:
    def test_replicated_text_is_local(self):
        # Page 1 (lines 4..7) marked as text: instruction fetches from
        # node 0 are homed locally despite the round-robin map.
        trace = make_trace(
            2,
            [(0, [encode(4, instr=True)]), (1, [encode(4, instr=True)])],
            page_bytes=PAGE,
            text_pages=frozenset({1}),
        )
        machine = MachineConfig.fully_integrated(
            2, l2_size=64 * 1024, l2_assoc=2, replicate_code=True, scale=1
        )
        r = simulate(machine, trace)
        assert r.misses.i_local == 2
        assert r.misses.i_remote == 0


class TestWarmupReset:
    def test_warmup_quanta_excluded_from_stats(self):
        refs = [encode(i) for i in range(8)]
        trace = make_trace(
            1, [(0, refs), (0, refs)], page_bytes=PAGE, warmup_quanta=1
        )
        r = simulate(uni(), trace)
        # Second quantum replays the same lines: all L1 hits.
        assert r.misses.total == 0
        assert r.breakdown.total == 0

    def test_without_warmup_all_counted(self):
        refs = [encode(i) for i in range(8)]
        trace = make_trace(1, [(0, refs), (0, refs)], page_bytes=PAGE)
        r = simulate(uni(), trace)
        assert r.misses.total == 8


class TestSystemLifecycle:
    def test_single_use(self):
        trace = make_trace(1, [(0, [encode(1)])], page_bytes=PAGE)
        system = System(uni())
        system.run(trace)
        with pytest.raises(RuntimeError):
            system.run(trace)

    def test_cpu_count_mismatch_rejected(self):
        trace = make_trace(2, [(0, [encode(1)])], page_bytes=PAGE)
        with pytest.raises(ValueError):
            simulate(uni(), trace)

    def test_ooo_model_runs(self):
        refs = [encode(i, instr=(i % 3 == 0)) for i in range(30)]
        trace = make_trace(1, [(0, refs)], page_bytes=PAGE)
        r = simulate(uni(cpu_model="ooo"), trace)
        assert r.breakdown.total > 0
        assert r.misses.total > 0
