"""Multi-engine differential harness.

Parametrized sweeps asserting that the replay engines — ``_run_fast``,
``_run_general``, the numpy ``_run_vectorized`` kernel and the staged
``_run_vectorized_mp`` pipeline — produce **equal**
``RunResult.to_dict()`` payloads wherever their domains overlap.

The uniprocessor grid covers L2 sizes × associativities × SRAM/DRAM
technology × TLB on/off, in-order and out-of-order CPUs, with and
without a warmup window.  The multiprocessor grid covers 2/8 nodes ×
RAC on/off × instruction replication on/off × in-order/OOO, which
exercises both of the staged pipeline's execution modes (batch and
stream) and all three of its flat-L2 representations.

Equality of the full serialized result is the contract that lets
cached campaign results stay valid across engines without a
``CODE_VERSION`` bump: any field drifting — breakdowns, miss
taxonomies, L1 stats, directory counters — fails here first.

TLB-on cells are the negative half of the grid: the vectorized and
fast engines must *refuse* them (ConfigError) and auto-selection must
fall back to the general engine, rather than silently mis-replaying.
"""

import random

import pytest

from repro.core.machine import MachineConfig
from repro.core.system import ENGINES, System
from repro.cpu.events import encode
from repro.integrity.errors import ConfigError
from repro.params import KB, IntegrationLevel, L2Technology
from repro.trace.synthetic import make_trace

PAGE = 256


def synthetic_trace(seed, *, nquanta=60, nlines=300, warmup=0):
    """Seeded uniprocessor trace with enough distinct lines to force
    eviction pressure on the small grid geometries."""
    rng = random.Random(seed)
    quanta = []
    for _ in range(nquanta):
        refs = []
        for _ in range(rng.randint(4, 40)):
            instr = rng.random() < 0.4
            refs.append(
                encode(
                    rng.randrange(nlines),
                    write=(not instr) and rng.random() < 0.4,
                    instr=instr,
                    kernel=rng.random() < 0.2,
                )
            )
        quanta.append((0, refs))
    return make_trace(1, quanta, page_bytes=PAGE, warmup_quanta=warmup)


def synthetic_mp_trace(seed, ncpus, *, nquanta=120, warmup=10,
                       replicate=False):
    """Seeded multiprocessor trace mixing per-CPU private working sets,
    a contended shared pool and (optionally replicated) kernel text, so
    every sharing class and miss kind shows up in the sweep."""
    rng = random.Random(seed)
    page_lines = PAGE // 64
    text_pages = frozenset(range(1000, 1004)) if replicate else frozenset()
    quanta = []
    for _ in range(nquanta):
        cpu = rng.randrange(ncpus)
        refs = []
        for _ in range(rng.randint(4, 60)):
            instr = rng.random() < 0.3
            if instr and text_pages and rng.random() < 0.5:
                line = 1000 * page_lines + rng.randrange(4 * page_lines)
            elif rng.random() < 0.5:
                line = 10000 * (cpu + 1) + rng.randrange(250)  # private
            else:
                line = 500 + rng.randrange(300)  # shared, contended
            refs.append(
                encode(
                    line,
                    write=(not instr) and rng.random() < 0.4,
                    instr=instr,
                    kernel=rng.random() < 0.2,
                    dependent=rng.random() < 0.3,
                )
            )
        quanta.append((cpu, refs))
    return make_trace(ncpus, quanta, page_bytes=PAGE,
                      warmup_quanta=warmup, text_pages=text_pages)


def grid_machine(l2_size, l2_assoc, technology, cpu_model="inorder",
                 tlb_entries=0):
    """One grid cell; scale=1 so the geometry is exactly as stated."""
    if technology is L2Technology.OFF_CHIP_SRAM:
        integration = IntegrationLevel.BASE
    else:
        integration = IntegrationLevel.L2
    return MachineConfig(
        label=f"diff {l2_size // KB}K{l2_assoc}w {technology.value}",
        ncpus=1,
        integration=integration,
        l2_size=l2_size,
        l2_assoc=l2_assoc,
        l2_technology=technology,
        cpu_model=cpu_model,
        tlb_entries=tlb_entries,
        scale=1,
    )


GEOMETRIES = [
    (2 * KB, 1),    # direct-mapped, heavy eviction
    (4 * KB, 2),    # hybrid: some sets overflow
    (8 * KB, 4),    # 4-way, overflow-dominated (specialized walk)
    (16 * KB, 4),   # 4-way, mixed overflow/known-outcome schedule
    (32 * KB, 8),   # no-evict: every set holds its footprint
]
TECHNOLOGIES = [
    L2Technology.OFF_CHIP_SRAM,
    L2Technology.ON_CHIP_SRAM,
    L2Technology.ON_CHIP_DRAM,
]


def run_all_engines(machine, trace):
    """Replay ``trace`` once per engine; Systems are single-use."""
    return {
        engine: System(machine, engine=engine).run(trace).to_dict()
        for engine in ("fast", "general", "vectorized")
    }


class TestThreeEngineEquivalence:
    @pytest.mark.parametrize("technology", TECHNOLOGIES,
                             ids=lambda t: t.value)
    @pytest.mark.parametrize("geometry", GEOMETRIES,
                             ids=lambda g: f"{g[0] // KB}K{g[1]}w")
    @pytest.mark.parametrize("seed,warmup", [(3, 0), (11, 12)])
    def test_runresults_identical(self, seed, warmup, geometry, technology):
        l2_size, l2_assoc = geometry
        machine = grid_machine(l2_size, l2_assoc, technology)
        trace = synthetic_trace(seed, warmup=warmup)
        results = run_all_engines(machine, trace)
        assert results["vectorized"] == results["fast"]
        assert results["fast"] == results["general"]

    @pytest.mark.parametrize("geometry", [(2 * KB, 1), (2 * KB, 4),
                                          (4 * KB, 2), (16 * KB, 4),
                                          (32 * KB, 8)],
                             ids=lambda g: f"{g[0] // KB}K{g[1]}w")
    def test_runresults_identical_ooo(self, geometry):
        l2_size, l2_assoc = geometry
        machine = grid_machine(l2_size, l2_assoc,
                               L2Technology.ON_CHIP_SRAM, cpu_model="ooo")
        trace = synthetic_trace(17, warmup=8)
        results = run_all_engines(machine, trace)
        assert results["vectorized"] == results["fast"]
        assert results["fast"] == results["general"]

    def test_auto_selection_matches_forced_engines(self):
        machine = grid_machine(4 * KB, 2, L2Technology.OFF_CHIP_SRAM)
        trace = synthetic_trace(5)
        auto_sys = System(machine)
        assert auto_sys.engine == "vectorized"
        auto = auto_sys.run(trace).to_dict()
        assert auto == System(machine, engine="fast").run(trace).to_dict()


class TestTlbCells:
    """TLB-on half of the grid: only the general engine may replay."""

    def tlb_machine(self):
        return grid_machine(4 * KB, 2, L2Technology.OFF_CHIP_SRAM,
                            tlb_entries=4)

    def test_vectorized_refuses_tlb(self):
        with pytest.raises(ConfigError):
            System(self.tlb_machine(), engine="vectorized")

    def test_fast_refuses_tlb(self):
        with pytest.raises(ConfigError):
            System(self.tlb_machine(), engine="fast")

    def test_auto_falls_back_to_general(self):
        machine = self.tlb_machine()
        assert System.select_engine(machine) == "general"
        system = System(machine)
        assert system.engine == "general"
        system.run(synthetic_trace(5))  # replays without error

    def test_machine_reports_not_vectorizable(self):
        assert not self.tlb_machine().vectorizable
        assert grid_machine(4 * KB, 2, L2Technology.OFF_CHIP_SRAM).vectorizable


def mp_machine(ncpus, *, rac_size=None, replicate=False,
               cpu_model="inorder", l2_assoc=4):
    """One multiprocessor grid cell; scale=1 geometry."""
    return MachineConfig(
        label=f"mp-diff n{ncpus} {l2_assoc}w"
              f"{' rac' if rac_size else ''}{' repl' if replicate else ''}",
        ncpus=ncpus,
        integration=IntegrationLevel.L2,
        l2_size=16 * KB,
        l2_assoc=l2_assoc,
        l2_technology=L2Technology.ON_CHIP_SRAM,
        cpu_model=cpu_model,
        rac_size=rac_size,
        replicate_code=replicate,
        scale=1,
    )


def run_mp_engines(machine, trace):
    """Replay ``trace`` once per MP-capable engine."""
    return {
        engine: System(machine, engine=engine).run(trace).to_dict()
        for engine in ("fast", "general", "vectorized-mp")
    }


class TestMultiprocessorEquivalence:
    """The staged pipeline's differential cells: 2/8 nodes × RAC ×
    instruction replication × in-order/OOO."""

    @pytest.mark.parametrize("cpu_model", ["inorder", "ooo"])
    @pytest.mark.parametrize("replicate", [False, True],
                             ids=["plain", "repl"])
    @pytest.mark.parametrize("rac", [None, 256 * KB],
                             ids=["norac", "rac"])
    @pytest.mark.parametrize("ncpus", [2, 8])
    def test_runresults_identical(self, ncpus, rac, replicate, cpu_model):
        machine = mp_machine(ncpus, rac_size=rac, replicate=replicate,
                             cpu_model=cpu_model)
        trace = synthetic_mp_trace(9, ncpus, replicate=replicate)
        results = run_mp_engines(machine, trace)
        assert results["vectorized-mp"] == results["fast"]
        assert results["fast"] == results["general"]

    @pytest.mark.parametrize("l2_assoc", [1, 2, 8],
                             ids=lambda a: f"{a}w")
    def test_runresults_identical_across_l2_modes(self, l2_assoc):
        """Direct-mapped, overflowing and no-evict L2 footprints pick
        different flat representations; all must stay exact."""
        machine = mp_machine(4, l2_assoc=l2_assoc)
        trace = synthetic_mp_trace(21, 4)
        results = run_mp_engines(machine, trace)
        assert results["vectorized-mp"] == results["fast"]
        assert results["fast"] == results["general"]

    def test_no_warmup_boundary(self):
        machine = mp_machine(2)
        trace = synthetic_mp_trace(13, 2, warmup=0)
        results = run_mp_engines(machine, trace)
        assert results["vectorized-mp"] == results["fast"]

    def test_end_of_run_checker_accepts_reconstructed_state(self):
        """The engine rebuilds directory entries for private lines at
        the end of the run; the integrity checker must see a state
        indistinguishable from the scalar loop's."""
        machine = mp_machine(8)
        trace = synthetic_mp_trace(9, 8)
        a = System(machine, engine="vectorized-mp",
                   check="end-of-run").run(trace).to_dict()
        b = System(machine, engine="fast",
                   check="end-of-run").run(trace).to_dict()
        assert a == b

    def test_auto_selection_matches_forced(self):
        machine = mp_machine(8)
        trace = synthetic_mp_trace(9, 8)
        auto_sys = System(machine)
        assert auto_sys.engine == "vectorized-mp"
        auto = auto_sys.run(trace).to_dict()
        assert auto == System(machine, engine="fast").run(trace).to_dict()


class TestEngineSelection:
    def test_engines_tuple_is_the_contract(self):
        assert ENGINES == ("auto", "fast", "general", "vectorized",
                           "vectorized-mp")
        with pytest.raises(ConfigError):
            System.select_engine(MachineConfig.base(1), engine="turbo")

    def test_uniprocessor_auto_selects_vectorized(self):
        assert System.select_engine(MachineConfig.base(1)) == "vectorized"

    def test_multiprocessor_auto_selects_vectorized_mp(self):
        assert System.select_engine(MachineConfig.base(8)) == "vectorized-mp"

    def test_vectorized_mp_refuses_uniprocessor(self):
        with pytest.raises(ConfigError):
            System.select_engine(MachineConfig.base(1),
                                 engine="vectorized-mp")

    def test_per_quantum_checking_vetoes_vectorized(self):
        machine = MachineConfig.base(1)
        assert System.select_engine(machine, check="per-quantum") == "fast"
        with pytest.raises(ConfigError):
            System.select_engine(machine, check="per-quantum",
                                 engine="vectorized")

    def test_per_quantum_checking_vetoes_vectorized_mp(self):
        machine = MachineConfig.base(8)
        assert System.select_engine(machine, check="per-quantum") == "fast"
        with pytest.raises(ConfigError):
            System.select_engine(machine, check="per-quantum",
                                 engine="vectorized-mp")

    def test_fault_plan_vetoes_vectorized(self):
        machine = MachineConfig.base(1)
        assert System.select_engine(machine, fault_plan=object()) == "fast"

    def test_fault_plan_vetoes_vectorized_mp(self):
        machine = MachineConfig.base(8)
        assert System.select_engine(machine, fault_plan=object()) == "fast"

    def test_engine_is_not_part_of_job_identity(self):
        """Cached results must stay valid whatever engine produced
        them: the SimJob content hash may not include the engine."""
        from repro.runner.jobs import SimJob
        from repro.runner.tracestore import TraceSpec

        spec = TraceSpec(ncpus=1, scale=64, txns=20, seed=1)
        job = SimJob(spec=spec, machine=MachineConfig.base(1))
        assert "engine" not in repr(job.payload()).lower()


# Chunk sizes for the streaming cells: single-quantum (maximum chunk
# count, boundary inside some chunk), a prime (misaligned with every
# geometry), and whole-trace (one chunk, the degenerate case).
STREAM_CHUNKS = [1, 7, None]
STREAM_CHUNK_IDS = ["q1", "q7", "whole"]


class TestStreamingEquivalence:
    """Chunked replay differential: every engine cell re-run through
    the streaming path must be value-identical to its materialized
    replay at every chunk size.

    ``StreamedTrace.from_trace`` re-presents the same trace as a
    single-use chunk iterator, so any divergence here isolates a bug
    in the streaming seam itself (chunk iteration, warmup-boundary
    normalization, ``collect()`` for the vectorized engines) rather
    than in an engine.
    """

    @pytest.mark.parametrize("technology", TECHNOLOGIES,
                             ids=lambda t: t.value)
    @pytest.mark.parametrize("geometry", GEOMETRIES,
                             ids=lambda g: f"{g[0] // KB}K{g[1]}w")
    def test_uniprocessor_cells(self, geometry, technology):
        from repro.trace.stream import StreamedTrace

        l2_size, l2_assoc = geometry
        machine = grid_machine(l2_size, l2_assoc, technology)
        trace = synthetic_trace(11, warmup=12)
        for engine in ("fast", "general", "vectorized"):
            base = System(machine, engine=engine).run(trace).to_dict()
            for chunk in STREAM_CHUNKS:
                streamed = System(machine, engine=engine).run(
                    StreamedTrace.from_trace(trace, chunk)
                ).to_dict()
                assert streamed == base, (engine, chunk)

    @pytest.mark.parametrize("chunk", STREAM_CHUNKS, ids=STREAM_CHUNK_IDS)
    def test_uniprocessor_no_warmup(self, chunk):
        from repro.trace.stream import StreamedTrace

        machine = grid_machine(4 * KB, 2, L2Technology.ON_CHIP_SRAM)
        trace = synthetic_trace(3, warmup=0)
        for engine in ("fast", "general", "vectorized"):
            base = System(machine, engine=engine).run(trace).to_dict()
            streamed = System(machine, engine=engine).run(
                StreamedTrace.from_trace(trace, chunk)
            ).to_dict()
            assert streamed == base, engine

    @pytest.mark.parametrize("ncpus", [2, 8])
    def test_multiprocessor_cells(self, ncpus):
        from repro.trace.stream import StreamedTrace

        machine = mp_machine(ncpus, rac_size=256 * KB, replicate=True)
        trace = synthetic_mp_trace(9, ncpus, replicate=True)
        for engine in ("fast", "general", "vectorized-mp"):
            base = System(machine, engine=engine).run(trace).to_dict()
            for chunk in STREAM_CHUNKS:
                streamed = System(machine, engine=engine).run(
                    StreamedTrace.from_trace(trace, chunk)
                ).to_dict()
                assert streamed == base, (engine, chunk)

    def test_ooo_streamed_cell(self):
        from repro.trace.stream import StreamedTrace

        machine = grid_machine(8 * KB, 4, L2Technology.ON_CHIP_SRAM,
                               cpu_model="ooo")
        trace = synthetic_trace(17, warmup=8)
        base = System(machine, engine="fast").run(trace).to_dict()
        streamed = System(machine, engine="fast").run(
            StreamedTrace.from_trace(trace, 7)).to_dict()
        assert streamed == base

    def test_stream_is_single_use(self):
        from repro.integrity.errors import StateError
        from repro.trace.stream import StreamedTrace

        machine = grid_machine(4 * KB, 2, L2Technology.OFF_CHIP_SRAM)
        trace = synthetic_trace(5)
        stream = StreamedTrace.from_trace(trace, 7)
        System(machine, engine="fast").run(stream)
        with pytest.raises(StateError):
            System(machine, engine="fast").run(stream)
