"""Three-engine differential harness.

One parametrized sweep asserting that the three replay engines —
``_run_fast``, ``_run_general`` and the numpy ``_run_vectorized``
kernel — produce **equal** ``RunResult.to_dict()`` payloads for every
uniprocessor configuration in the grid: L2 sizes × associativities ×
SRAM/DRAM technology × TLB on/off, in-order and out-of-order CPUs,
with and without a warmup window.

Equality of the full serialized result is the contract that lets
cached campaign results stay valid across engines without a
``CODE_VERSION`` bump: any field drifting — breakdowns, miss
taxonomies, L1 stats, directory counters — fails here first.

TLB-on cells are the negative half of the grid: the vectorized and
fast engines must *refuse* them (ConfigError) and auto-selection must
fall back to the general engine, rather than silently mis-replaying.
"""

import random

import pytest

from repro.core.machine import MachineConfig
from repro.core.system import ENGINES, System
from repro.cpu.events import encode
from repro.integrity.errors import ConfigError
from repro.params import KB, IntegrationLevel, L2Technology
from repro.trace.synthetic import make_trace

PAGE = 256


def synthetic_trace(seed, *, nquanta=60, nlines=300, warmup=0):
    """Seeded uniprocessor trace with enough distinct lines to force
    eviction pressure on the small grid geometries."""
    rng = random.Random(seed)
    quanta = []
    for _ in range(nquanta):
        refs = []
        for _ in range(rng.randint(4, 40)):
            instr = rng.random() < 0.4
            refs.append(
                encode(
                    rng.randrange(nlines),
                    write=(not instr) and rng.random() < 0.4,
                    instr=instr,
                    kernel=rng.random() < 0.2,
                )
            )
        quanta.append((0, refs))
    return make_trace(1, quanta, page_bytes=PAGE, warmup_quanta=warmup)


def grid_machine(l2_size, l2_assoc, technology, cpu_model="inorder",
                 tlb_entries=0):
    """One grid cell; scale=1 so the geometry is exactly as stated."""
    if technology is L2Technology.OFF_CHIP_SRAM:
        integration = IntegrationLevel.BASE
    else:
        integration = IntegrationLevel.L2
    return MachineConfig(
        label=f"diff {l2_size // KB}K{l2_assoc}w {technology.value}",
        ncpus=1,
        integration=integration,
        l2_size=l2_size,
        l2_assoc=l2_assoc,
        l2_technology=technology,
        cpu_model=cpu_model,
        tlb_entries=tlb_entries,
        scale=1,
    )


GEOMETRIES = [
    (2 * KB, 1),    # direct-mapped, heavy eviction
    (4 * KB, 2),    # hybrid: some sets overflow
    (8 * KB, 4),    # 4-way, overflow-dominated (specialized walk)
    (16 * KB, 4),   # 4-way, mixed overflow/known-outcome schedule
    (32 * KB, 8),   # no-evict: every set holds its footprint
]
TECHNOLOGIES = [
    L2Technology.OFF_CHIP_SRAM,
    L2Technology.ON_CHIP_SRAM,
    L2Technology.ON_CHIP_DRAM,
]


def run_all_engines(machine, trace):
    """Replay ``trace`` once per engine; Systems are single-use."""
    return {
        engine: System(machine, engine=engine).run(trace).to_dict()
        for engine in ("fast", "general", "vectorized")
    }


class TestThreeEngineEquivalence:
    @pytest.mark.parametrize("technology", TECHNOLOGIES,
                             ids=lambda t: t.value)
    @pytest.mark.parametrize("geometry", GEOMETRIES,
                             ids=lambda g: f"{g[0] // KB}K{g[1]}w")
    @pytest.mark.parametrize("seed,warmup", [(3, 0), (11, 12)])
    def test_runresults_identical(self, seed, warmup, geometry, technology):
        l2_size, l2_assoc = geometry
        machine = grid_machine(l2_size, l2_assoc, technology)
        trace = synthetic_trace(seed, warmup=warmup)
        results = run_all_engines(machine, trace)
        assert results["vectorized"] == results["fast"]
        assert results["fast"] == results["general"]

    @pytest.mark.parametrize("geometry", [(2 * KB, 1), (2 * KB, 4),
                                          (4 * KB, 2), (16 * KB, 4),
                                          (32 * KB, 8)],
                             ids=lambda g: f"{g[0] // KB}K{g[1]}w")
    def test_runresults_identical_ooo(self, geometry):
        l2_size, l2_assoc = geometry
        machine = grid_machine(l2_size, l2_assoc,
                               L2Technology.ON_CHIP_SRAM, cpu_model="ooo")
        trace = synthetic_trace(17, warmup=8)
        results = run_all_engines(machine, trace)
        assert results["vectorized"] == results["fast"]
        assert results["fast"] == results["general"]

    def test_auto_selection_matches_forced_engines(self):
        machine = grid_machine(4 * KB, 2, L2Technology.OFF_CHIP_SRAM)
        trace = synthetic_trace(5)
        auto_sys = System(machine)
        assert auto_sys.engine == "vectorized"
        auto = auto_sys.run(trace).to_dict()
        assert auto == System(machine, engine="fast").run(trace).to_dict()


class TestTlbCells:
    """TLB-on half of the grid: only the general engine may replay."""

    def tlb_machine(self):
        return grid_machine(4 * KB, 2, L2Technology.OFF_CHIP_SRAM,
                            tlb_entries=4)

    def test_vectorized_refuses_tlb(self):
        with pytest.raises(ConfigError):
            System(self.tlb_machine(), engine="vectorized")

    def test_fast_refuses_tlb(self):
        with pytest.raises(ConfigError):
            System(self.tlb_machine(), engine="fast")

    def test_auto_falls_back_to_general(self):
        machine = self.tlb_machine()
        assert System.select_engine(machine) == "general"
        system = System(machine)
        assert system.engine == "general"
        system.run(synthetic_trace(5))  # replays without error

    def test_machine_reports_not_vectorizable(self):
        assert not self.tlb_machine().vectorizable
        assert grid_machine(4 * KB, 2, L2Technology.OFF_CHIP_SRAM).vectorizable


class TestEngineSelection:
    def test_engines_tuple_is_the_contract(self):
        assert ENGINES == ("auto", "fast", "general", "vectorized")
        with pytest.raises(ConfigError):
            System.select_engine(MachineConfig.base(1), engine="turbo")

    def test_uniprocessor_auto_selects_vectorized(self):
        assert System.select_engine(MachineConfig.base(1)) == "vectorized"

    def test_multiprocessor_auto_selects_fast(self):
        assert System.select_engine(MachineConfig.base(8)) == "fast"

    def test_per_quantum_checking_vetoes_vectorized(self):
        machine = MachineConfig.base(1)
        assert System.select_engine(machine, check="per-quantum") == "fast"
        with pytest.raises(ConfigError):
            System.select_engine(machine, check="per-quantum",
                                 engine="vectorized")

    def test_fault_plan_vetoes_vectorized(self):
        machine = MachineConfig.base(1)
        assert System.select_engine(machine, fault_plan=object()) == "fast"

    def test_engine_is_not_part_of_job_identity(self):
        """Cached results must stay valid whatever engine produced
        them: the SimJob content hash may not include the engine."""
        from repro.runner.jobs import SimJob
        from repro.runner.tracestore import TraceSpec

        spec = TraceSpec(ncpus=1, scale=64, txns=20, seed=1)
        job = SimJob(spec=spec, machine=MachineConfig.base(1))
        assert "engine" not in repr(job.payload()).lower()
