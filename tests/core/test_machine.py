"""Tests for machine configuration factories and validation."""

import pytest

from repro.core.machine import MachineConfig, cache_label
from repro.params import KB, MB, IntegrationLevel, L2Technology


class TestLabels:
    def test_cache_label_mb(self):
        assert cache_label(2 * MB, 8) == "2M8w"
        assert cache_label(8 * MB, 1) == "8M1w"

    def test_cache_label_fractional_mb(self):
        assert cache_label(1280 * KB, 4) == "1.25M4w"

    def test_cache_label_kb(self):
        assert cache_label(64 * KB, 2) == "64K2w"


class TestFactories:
    def test_base_defaults_match_figure2(self):
        m = MachineConfig.base()
        assert m.l2_size == 8 * MB
        assert m.l2_assoc == 1
        assert m.integration is IntegrationLevel.BASE
        assert m.ncpus == 1

    def test_conservative_base(self):
        m = MachineConfig.conservative_base(8)
        assert m.integration is IntegrationLevel.CONSERVATIVE_BASE
        assert m.l2_assoc == 4

    def test_integrated_l2_sram(self):
        m = MachineConfig.integrated_l2()
        assert m.integration is IntegrationLevel.L2
        assert m.l2_technology is L2Technology.ON_CHIP_SRAM
        assert m.l2_size == 2 * MB and m.l2_assoc == 8

    def test_fully_integrated_with_rac(self):
        m = MachineConfig.fully_integrated(8, rac_size=8 * MB, replicate_code=True)
        assert m.rac_size == 8 * MB
        assert m.replicate_code
        assert "+RAC" in m.label

    def test_with_override(self):
        m = MachineConfig.base().with_(cpu_model="ooo")
        assert m.cpu_model == "ooo"
        assert m.l2_size == 8 * MB


class TestLatencies:
    def test_base_direct_mapped(self):
        lat = MachineConfig.base().latencies
        assert (lat.l2_hit, lat.local) == (25, 100)

    def test_base_associative_pays_set_selection(self):
        lat = MachineConfig.base(l2_assoc=4).latencies
        assert lat.l2_hit == 30

    def test_integrated_sram(self):
        assert MachineConfig.integrated_l2().latencies.l2_hit == 15

    def test_integrated_dram(self):
        m = MachineConfig.integrated_l2(
            l2_size=8 * MB, technology=L2Technology.ON_CHIP_DRAM
        )
        assert m.latencies.l2_hit == 25

    def test_full_integration(self):
        lat = MachineConfig.fully_integrated(8).latencies
        assert (lat.l2_hit, lat.local, lat.remote_clean, lat.remote_dirty) == (
            15, 75, 150, 200,
        )


class TestScaling:
    def test_scaled_l2(self):
        m = MachineConfig.base(scale=32)
        assert m.scaled_l2_size == 8 * MB // 32

    def test_scaled_size_multiple_of_ways(self):
        m = MachineConfig.integrated_l2(l2_size=1280 * KB, l2_assoc=4, scale=96)
        assert m.scaled_l2_size % (4 * 64) == 0
        assert m.scaled_l2_size > 0

    def test_scaled_l1_uses_relief(self):
        m = MachineConfig.base(scale=32)
        assert m.scaled_l1_size == 64 * KB * MachineConfig.L1_SCALE_RELIEF // 32

    def test_scaled_rac(self):
        m = MachineConfig.fully_integrated(8, rac_size=8 * MB, scale=32)
        assert m.scaled_rac_size == 8 * MB // 32
        assert MachineConfig.base().scaled_rac_size is None


class TestValidation:
    def test_rejects_zero_cpus(self):
        with pytest.raises(ValueError):
            MachineConfig(label="x", ncpus=0)

    def test_rejects_bad_cpu_model(self):
        with pytest.raises(ValueError):
            MachineConfig(label="x", cpu_model="vliw")

    def test_rejects_offchip_tech_on_integrated(self):
        with pytest.raises(ValueError):
            MachineConfig(
                label="x",
                integration=IntegrationLevel.L2,
                l2_technology=L2Technology.OFF_CHIP_SRAM,
            )

    def test_rejects_onchip_tech_on_base(self):
        with pytest.raises(ValueError):
            MachineConfig(
                label="x",
                integration=IntegrationLevel.BASE,
                l2_technology=L2Technology.ON_CHIP_SRAM,
            )

    def test_rejects_uniprocessor_rac(self):
        with pytest.raises(ValueError):
            MachineConfig(
                label="x",
                integration=IntegrationLevel.FULL,
                l2_technology=L2Technology.ON_CHIP_SRAM,
                rac_size=8 * MB,
            )

    def test_rejects_bad_l2_geometry(self):
        with pytest.raises(ValueError):
            MachineConfig(label="x", l2_size=0)
