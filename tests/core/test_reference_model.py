"""Differential test: every replay engine vs a clean reference.

The System replay engines reach into cache internals for speed (the
vectorized one does not even keep per-reference cache state).  This
test re-implements the replay using only the public NodeCaches /
DirectoryProtocol / InterconnectModel APIs and checks that each engine
produces identical stall accounting and miss classification.  Engine
parity with each *other* is covered exhaustively by
``tests/core/test_differential.py``; here every engine is anchored to
the reference semantics directly, so a bug shared by all three cannot
hide.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coherence.homemap import HomeMap
from repro.coherence.network import InterconnectModel
from repro.coherence.protocol import DirectoryProtocol
from repro.core.machine import MachineConfig
from repro.core.system import System
from repro.cpu.events import encode
from repro.cpu.inorder import InOrderCPU
from repro.memsys.hierarchy import HierarchyLevel, NodeCaches
from repro.params import INSTRS_PER_ILINE, L1_ASSOC, MissKind
from repro.stats.breakdown import MissBreakdown
from repro.trace.synthetic import make_trace

PAGE = 256

_KIND_TO_STALL = {
    MissKind.LOCAL: 1,
    MissKind.REMOTE_CLEAN: 2,
    MissKind.REMOTE_DIRTY: 3,
}


def reference_run(machine: MachineConfig, trace):
    """Clean-room replay using only public component APIs."""
    nodes = [
        NodeCaches(
            machine.scaled_l2_size,
            machine.l2_assoc,
            l1_size=machine.scaled_l1_size,
            l1_assoc=L1_ASSOC,
            node_id=i,
        )
        for i in range(machine.ncpus)
    ]
    homemap = HomeMap(machine.ncpus, trace.page_bytes)
    protocol = DirectoryProtocol(homemap, nodes)
    net = InterconnectModel(machine.latencies)
    cpus = [InOrderCPU(i) for i in range(machine.ncpus)]
    misses = MissBreakdown()
    mp = machine.ncpus > 1

    for quantum in trace.quanta:
        cpu = cpus[quantum.cpu]
        node = nodes[quantum.cpu]
        for ref in quantum.refs:
            flags = ref & 15
            line = ref >> 4
            write = bool(flags & 1)
            instr = bool(flags & 2)
            if instr:
                cpu.busy(INSTRS_PER_ILINE, bool(flags & 4))
            result = node.access(line, write, instr)
            if result.victim is not None:
                protocol.handle_eviction(
                    quantum.cpu, result.victim, result.victim_dirty
                )
            if result.level is HierarchyLevel.MISS:
                outcome = protocol.service_miss(quantum.cpu, line, write, instr)
                cpu.stall(net.service_latency(outcome), _KIND_TO_STALL[outcome.kind])
                misses.record(outcome.kind, instr)
            else:
                if result.level is HierarchyLevel.L2:
                    cpu.stall(machine.latencies.l2_hit, 0)
                if write and mp:
                    outcome = protocol.ensure_owner(quantum.cpu, line)
                    if outcome is not None:
                        cpu.stall(
                            net.service_latency(outcome),
                            _KIND_TO_STALL[outcome.kind],
                        )
    total = sum(cpu.now for cpu in cpus)
    return total, misses


def random_trace(seed, ncpus, nquanta=40, nlines=48):
    rng = random.Random(seed)
    quanta = []
    for _ in range(nquanta):
        cpu = rng.randrange(ncpus)
        refs = []
        for _ in range(rng.randint(1, 30)):
            instr = rng.random() < 0.4
            refs.append(
                encode(
                    rng.randrange(nlines),
                    # Instruction fetches are never stores.
                    write=(not instr) and rng.random() < 0.4,
                    instr=instr,
                    kernel=rng.random() < 0.2,
                )
            )
        quanta.append((cpu, refs))
    return make_trace(ncpus, quanta, page_bytes=PAGE)


def machine_for(ncpus, l2_size, l2_assoc):
    return MachineConfig.base(ncpus, l2_size=l2_size, l2_assoc=l2_assoc, scale=1)


@pytest.mark.parametrize("engine", ["fast", "general", "vectorized"])
@given(st.integers(0, 10_000),
       st.sampled_from([(2048, 1), (4096, 2), (8192, 4)]))
@settings(max_examples=15, deadline=None)
def test_uniprocessor_engines_match_reference(engine, seed, geometry):
    l2_size, l2_assoc = geometry
    trace = random_trace(seed, 1)
    machine = machine_for(1, l2_size, l2_assoc)
    got = System(machine, engine=engine).run(trace)
    ref_total, ref_misses = reference_run(machine, random_trace(seed, 1))
    assert got.breakdown.total == ref_total
    assert got.misses.as_dict() == ref_misses.as_dict()


@pytest.mark.parametrize("engine", ["fast", "general"])
@given(st.integers(0, 10_000), st.sampled_from([2, 4]),
       st.sampled_from([(2048, 1), (4096, 2), (8192, 4)]))
@settings(max_examples=15, deadline=None)
def test_multiprocessor_engines_match_reference(engine, seed, ncpus, geometry):
    l2_size, l2_assoc = geometry
    trace = random_trace(seed, ncpus)
    machine = machine_for(ncpus, l2_size, l2_assoc)
    got = System(machine, engine=engine).run(trace)
    ref_total, ref_misses = reference_run(machine, random_trace(seed, ncpus))
    assert got.breakdown.total == ref_total
    assert got.misses.as_dict() == ref_misses.as_dict()


@pytest.mark.parametrize("engine", ["fast", "general", "vectorized"])
def test_engines_match_reference_small_caches(engine):
    """Heavy eviction pressure: tiny L2 forces constant replacement."""
    trace = random_trace(99, 1, nquanta=120, nlines=200)
    machine = machine_for(1, 1024, 1)
    got = System(machine, engine=engine).run(trace)
    ref_total, ref_misses = reference_run(
        machine, random_trace(99, 1, nquanta=120, nlines=200)
    )
    assert got.breakdown.total == ref_total
    assert got.misses.as_dict() == ref_misses.as_dict()


def test_multiprocessor_small_caches_matches_reference():
    trace = random_trace(99, 4, nquanta=120, nlines=200)
    machine = machine_for(4, 1024, 1)
    got = System(machine).run(trace)
    ref_total, ref_misses = reference_run(
        machine, random_trace(99, 4, nquanta=120, nlines=200)
    )
    assert got.breakdown.total == ref_total
    assert got.misses.as_dict() == ref_misses.as_dict()
