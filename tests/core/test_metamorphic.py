"""Metamorphic properties of the simulator.

These check relations that must hold between *pairs* of simulations —
the kind of bug net unit tests cannot provide: latency monotonicity,
RAC miss-count invariance, replication localization, and OOO-vs-in-
order dominance, all on random multiprocessor traces.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.machine import MachineConfig
from repro.core.system import simulate
from repro.cpu.events import encode
from repro.params import MB, IntegrationLevel, LatencyTable
from repro.scenario.topology import TopologySpec
from repro.trace.synthetic import make_trace

PAGE = 256


def random_trace(seed, ncpus=4, nlines=96, nquanta=80):
    """Random trace with disjoint code and data line ranges (code is
    never written, as in any real execution)."""
    rng = random.Random(seed)
    code_lines = nlines // 2
    quanta = []
    for _ in range(nquanta):
        cpu = rng.randrange(ncpus)
        refs = []
        for _ in range(rng.randint(2, 24)):
            instr = rng.random() < 0.35
            if instr:
                line = rng.randrange(code_lines)
                refs.append(encode(line, instr=True,
                                   kernel=rng.random() < 0.15))
            else:
                line = code_lines + rng.randrange(nlines - code_lines)
                refs.append(
                    encode(
                        line,
                        write=rng.random() < 0.4,
                        kernel=rng.random() < 0.15,
                        dependent=rng.random() < 0.2,
                    )
                )
        quanta.append((cpu, refs))
    return make_trace(ncpus, quanta, page_bytes=PAGE)


def base_machine(**kw):
    kw.setdefault("l2_size", 4096)
    kw.setdefault("l2_assoc", 2)
    return MachineConfig.base(4, scale=1, **kw)


@given(st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_raising_any_latency_never_speeds_up(seed):
    trace_a, trace_b = random_trace(seed), random_trace(seed)
    machine = base_machine()
    base = simulate(machine, trace_a)
    slower_table = LatencyTable(30, 120, 200, 320, remote_upgrade=200)
    slower = simulate(
        machine.with_(topology=TopologySpec.uniform(base_table=slower_table)),
        trace_b,
    )
    assert slower.breakdown.total >= base.breakdown.total
    # Miss counts are latency-independent.
    assert slower.misses.as_dict() == base.misses.as_dict()


@given(st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_rac_never_changes_total_misses(seed):
    full = MachineConfig.fully_integrated(4, l2_size=4096, l2_assoc=2, scale=1)
    with_rac = full.with_(rac_size=64 * 1024, label="rac")
    a = simulate(full, random_trace(seed))
    b = simulate(with_rac, random_trace(seed))
    assert a.misses.total == b.misses.total
    # The RAC can only *localize* service: remote misses never increase
    # beyond the 3-hop conversions, and locals never decrease.
    assert (b.misses.i_local + b.misses.d_local) >= (
        a.misses.i_local + a.misses.d_local
    )


@given(st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_replication_eliminates_remote_instruction_misses(seed):
    trace = random_trace(seed)
    # Mark the code half of the line space as replicated text pages.
    trace.text_pages = frozenset(line // 4 for line in range(48))
    machine = MachineConfig.fully_integrated(
        4, l2_size=4096, l2_assoc=2, replicate_code=True, scale=1
    )
    result = simulate(machine, trace)
    assert result.misses.i_remote == 0


@given(st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_ooo_never_slower_than_inorder(seed):
    ino = simulate(base_machine(), random_trace(seed))
    ooo = simulate(base_machine(cpu_model="ooo"), random_trace(seed))
    assert ooo.breakdown.total <= ino.breakdown.total
    assert ooo.misses.as_dict() == ino.misses.as_dict()


@given(st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_full_integration_never_slower_than_conservative(seed):
    # Same cache geometry, strictly better latencies everywhere.
    cons = MachineConfig.conservative_base(4, l2_size=4096, l2_assoc=2, scale=1)
    full = MachineConfig.fully_integrated(4, l2_size=4096, l2_assoc=2, scale=1)
    a = simulate(cons, random_trace(seed))
    b = simulate(full, random_trace(seed))
    assert b.breakdown.total <= a.breakdown.total


@given(st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_lru_stack_property_fully_associative(seed):
    """LRU inclusion: a bigger fully-associative cache never misses
    more than a smaller one (the classic stack property — it holds
    only for nested fully-associative sizes, not across different set
    mappings, which is exactly why the paper's conflict misses can
    make an 8 MB direct-mapped cache lose to a 2 MB 8-way one)."""
    big = MachineConfig.base(1, l2_size=2048, l2_assoc=2048 // 64, scale=1)
    small = MachineConfig.base(1, l2_size=1024, l2_assoc=1024 // 64, scale=1)
    a = simulate(big, random_trace(seed, ncpus=1))
    b = simulate(small, random_trace(seed, ncpus=1))
    assert a.misses.total <= b.misses.total
