"""Tests for text rendering of figures."""

from repro.core.machine import MachineConfig
from repro.experiments.common import run_configs
from repro.experiments.report import bar_chart, miss_table, render, summary_line, time_table
from repro.trace.synthetic import make_trace, sweep_refs


def figure(notes=()):
    refs = sweep_refs(0, 30) + sweep_refs(0, 30, write=True)
    trace = make_trace(1, [(0, refs)], page_bytes=256)
    fig = run_configs(
        "Figure T",
        "render test",
        [
            ("tiny", MachineConfig.base(1, l2_size=512, l2_assoc=1, scale=1)),
            ("large", MachineConfig.base(1, l2_size=8192, l2_assoc=4, scale=1)),
        ],
        trace,
    )
    fig.notes.extend(notes)
    return fig


def test_time_table_has_header_and_rows():
    text = time_table(figure())
    lines = text.splitlines()
    assert "Figure T" in lines[0]
    assert "LocStall" in lines[1]
    assert len(lines) == 4  # title + header + 2 rows


def test_miss_table_categories():
    text = miss_table(figure())
    assert "D-RemD" in text
    assert "100.0" in text


def test_bar_chart_scales_to_width():
    text = bar_chart(figure(), width=30)
    for line in text.splitlines()[1:-1]:
        bar = line.split("|", 1)[1].split()[0]
        assert len(bar) <= 33  # width plus rounding slack


def test_bar_chart_legend():
    assert "legend" in bar_chart(figure())


def test_render_includes_notes_without_blank_lines():
    text = render(figure(notes=["alpha", "beta"]))
    notes_block = text.split("notes:")[1]
    assert "- alpha\n  - beta" in notes_block


def test_render_without_misses():
    text = render(figure(), misses=False)
    assert "normalized L2 misses" not in text


def test_render_with_chart():
    assert "legend" in render(figure(), chart=True)


def test_summary_line():
    fig = figure()
    line = summary_line(fig.rows[1])
    assert "large" in line and "time" in line
