"""Tests for experiment plumbing: settings, trace cache, normalization."""

from repro.core.machine import MachineConfig
from repro.experiments.common import (
    Settings,
    clear_trace_cache,
    get_trace,
    run_configs,
)
from repro.trace.synthetic import make_trace, sweep_refs

TINY = Settings(scale=256, uni_txns=12, mp_txns=24, seed=3)


class TestSettings:
    def test_paper_defaults(self):
        s = Settings.paper()
        assert s.scale == 32

    def test_quick_is_smaller(self):
        q, p = Settings.quick(), Settings.paper()
        assert q.scale > p.scale
        assert q.uni_txns < p.uni_txns


class TestTraceCache:
    def test_same_settings_reuse_trace(self):
        clear_trace_cache()
        a = get_trace(1, TINY)
        b = get_trace(1, TINY)
        assert a is b

    def test_different_cpu_counts_distinct(self):
        clear_trace_cache()
        a = get_trace(1, TINY)
        b = get_trace(2, TINY)
        assert a is not b
        assert b.ncpus == 2
        clear_trace_cache()


class TestRunConfigs:
    def _figure(self):
        refs = sweep_refs(0, 40) + sweep_refs(0, 40)
        trace = make_trace(1, [(0, refs)], page_bytes=256)
        configs = [
            ("small", MachineConfig.base(1, l2_size=1024, l2_assoc=1, scale=1)),
            ("big", MachineConfig.base(1, l2_size=8192, l2_assoc=2, scale=1)),
        ]
        return run_configs("T", "test figure", configs, trace)

    def test_baseline_normalizes_to_100(self):
        fig = self._figure()
        assert fig.baseline.time_norm == 100.0
        assert fig.baseline.miss_norm == 100.0

    def test_row_lookup(self):
        fig = self._figure()
        assert fig.row("big").label == "big"
        import pytest
        with pytest.raises(KeyError):
            fig.row("nope")

    def test_speedup(self):
        fig = self._figure()
        assert fig.speedup("big") >= 1.0
        assert fig.speedup("big", over="small") == fig.speedup("big")

    def test_breakdown_norm_sums_to_time_norm(self):
        fig = self._figure()
        for row in fig.rows:
            parts = row.breakdown_norm
            assert abs(sum(parts.values()) - row.time_norm) < 1e-6
