"""Tests for CSV export of figures."""

import csv
import io

from repro.core.machine import MachineConfig
from repro.experiments.common import run_configs
from repro.experiments.export import (
    COLUMNS,
    figure_rows,
    figure_to_csv,
    write_figure_csv,
)
from repro.trace.synthetic import make_trace, sweep_refs


def _figure():
    refs = sweep_refs(0, 40, write=False) + sweep_refs(0, 40)
    trace = make_trace(1, [(0, refs)], page_bytes=256, measured_txns=4)
    configs = [
        ("small", MachineConfig.base(1, l2_size=1024, l2_assoc=1, scale=1)),
        ("big", MachineConfig.base(1, l2_size=8192, l2_assoc=2, scale=1)),
    ]
    return run_configs("T", "export test", configs, trace)


def test_rows_have_all_columns():
    rows = figure_rows(_figure())
    assert len(rows) == 2
    for row in rows:
        assert set(row) == set(COLUMNS)


def test_baseline_row_normalized_to_100():
    rows = figure_rows(_figure())
    assert rows[0]["time_norm"] == 100.0
    assert rows[0]["miss_norm"] == 100.0


def test_csv_parses_back():
    text = figure_to_csv(_figure())
    parsed = list(csv.DictReader(io.StringIO(text)))
    assert [r["configuration"] for r in parsed] == ["small", "big"]
    assert float(parsed[0]["time_norm"]) == 100.0


def test_write_creates_parent_dirs(tmp_path):
    out = write_figure_csv(_figure(), tmp_path / "sub" / "fig.csv")
    assert out.exists()
    assert "configuration" in out.read_text().splitlines()[0]


def test_breakdown_components_sum_to_total():
    for row in figure_rows(_figure()):
        total = row["cpu"] + row["l2_hit"] + row["local_stall"] + row["remote_stall"]
        assert abs(total - row["time_norm"]) < 0.02
