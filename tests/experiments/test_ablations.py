"""Tests for the ablation studies."""

import pytest

from repro.experiments.ablations import (
    cmp_study,
    latency_sensitivity,
    scaling_study,
    victim_buffer_study,
)
from repro.experiments.common import Settings, clear_trace_cache

TINY = Settings(scale=256, uni_txns=30, mp_txns=80, seed=3)


@pytest.fixture(autouse=True, scope="module")
def _clear():
    clear_trace_cache()
    yield
    clear_trace_cache()


class TestVictimBufferStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return victim_buffer_study(TINY)

    def test_rows_present(self, study):
        labels = [label for label, _ in study.rows]
        assert labels[0] == "2M1w" and "2M8w" in labels

    def test_buffer_monotonically_reduces_misses(self, study):
        by_label = dict(study.rows)
        assert (
            by_label["2M1w"].misses.total
            >= by_label["2M1w +VB8"].misses.total
            >= by_label["2M1w +VB16"].misses.total
            >= by_label["2M1w +VB64"].misses.total
        )

    def test_associativity_still_wins(self, study):
        by_label = dict(study.rows)
        assert by_label["2M8w"].misses.total <= by_label["2M1w +VB16"].misses.total

    def test_render(self, study):
        assert "victim buffers" in study.render()


class TestCmpStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return cmp_study(TINY)

    def test_chip_counts(self, study):
        assert [r.machine.num_nodes for _, r in study.rows] == [16, 8, 4]
        assert all(r.machine.ncpus == 16 for _, r in study.rows)

    def test_cmp_cost_near_parity(self, study):
        flat = study.rows[0][1].cycles_per_txn
        dual = study.rows[1][1].cycles_per_txn
        assert abs(dual / flat - 1.0) < 0.25

    def test_fewer_chips_less_dirty_share(self, study):
        shares = [r.misses.dirty_share for _, r in study.rows]
        assert shares[2] <= shares[0] + 0.02  # on-chip sharing localizes

    def test_render(self, study):
        assert "chip multiprocessing" in study.render()


class TestLatencySensitivity:
    def test_mp_most_sensitive_to_remote_dirty(self):
        study = latency_sensitivity(TINY, ncpus=8)
        by_class = dict(study.deltas)
        assert by_class["remote_dirty"] > by_class["local"]
        assert all(v >= 0.999 for v in by_class.values())

    def test_uni_has_no_remote_classes(self):
        study = latency_sensitivity(TINY, ncpus=1)
        names = [n for n, _ in study.deltas]
        assert names == ["l2_hit", "local"]
        # At the degenerate test scale the l2_hit-vs-local ranking is
        # not meaningful (cache-size floors bind); the realistic-scale
        # ranking is asserted by the benchmark harness.
        assert all(v >= 1.0 for _, v in study.deltas)

    def test_render_names_the_winner(self):
        text = latency_sensitivity(TINY, ncpus=1).render()
        assert "most performance-critical class" in text


class TestScalingStudy:
    def test_shape_stable_across_scales(self):
        # Scale floors bind below ~128; use the smallest regime where
        # the methodology is claimed to hold.
        study = scaling_study(scales=(96,), txns=120, seed=3)
        for scale, speedup, miss_ratio in study.rows:
            assert speedup > 1.0
        assert "scaling robustness" in study.render()


class TestTlbStudy:
    def test_reach_curve_monotone(self):
        from repro.experiments.ablations import tlb_study

        study = tlb_study(TINY, entry_counts=(0, 32, 256))
        slowdowns = [s for _, s, _ in study.rows]
        assert slowdowns[0] == 1.0
        assert slowdowns[1] >= slowdowns[2] >= 1.0
        fills = [f for _, _, f in study.rows]
        assert fills[1] > fills[2]

    def test_render(self):
        from repro.experiments.ablations import tlb_study

        assert "TLB reach" in tlb_study(TINY, entry_counts=(0, 32)).render()
