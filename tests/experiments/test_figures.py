"""Driver-level tests: every figure runs and has the right structure.

These use very small settings — the *shape* assertions at realistic
sizes live in tests/integration/test_paper_shapes.py.
"""

import pytest

from repro.experiments import fig3_latencies, integration, offchip, onchip, rac
from repro.experiments import ooo as ooo_experiment
from repro.experiments.cli import FIGURES, main, run_figure
from repro.experiments.common import Settings, clear_trace_cache
from repro.experiments.report import bar_chart, miss_table, render, time_table

TINY = Settings(scale=256, uni_txns=20, mp_txns=60, seed=3)


@pytest.fixture(autouse=True, scope="module")
def _clear_cache():
    clear_trace_cache()
    yield
    clear_trace_cache()


class TestFig3:
    def test_render_contains_all_rows(self):
        text = fig3_latencies.render()
        for label in ("Conservative Base", "Base, 1-way L2", "CC/NR integrated"):
            assert label in text

    def test_ratios(self):
        r = fig3_latencies.reduction_ratios()
        assert r["l2_hit"] == pytest.approx(25 / 15)


class TestOffchip:
    def test_fig5_rows(self):
        fig = offchip.run(1, TINY)
        labels = [r.label for r in fig.rows]
        assert labels[0] == "1M1w" and "Cons 8M4w" in labels
        assert len(labels) == 9
        assert fig.baseline.time_norm == 100.0

    def test_fig6_is_multiprocessor(self):
        fig = offchip.run(8, TINY)
        assert fig.rows[0].result.machine.ncpus == 8
        assert fig.notes


class TestOnchip:
    def test_fig7_rows(self):
        fig = onchip.run(1, TINY)
        labels = [r.label for r in fig.rows]
        assert labels == ["8M1w Base", "1M8w", "2M8w", "2M4w", "2M2w", "2M1w",
                          "8M8w DRAM"]

    def test_dram_has_dram_latency(self):
        fig = onchip.run(1, TINY)
        assert fig.row("8M8w DRAM").result.machine.latencies.l2_hit == 25


class TestIntegration:
    def test_fig10_structure(self):
        study = integration.run(TINY)
        assert [r.label for r in study.uni.rows] == ["Base", "L2", "L2+MC"]
        assert [r.label for r in study.mp.rows] == ["Base", "L2", "L2+MC", "All"]
        assert study.conservative_speedup > 1.0
        assert study.mp_full_speedup == study.mp.speedup("All")


class TestRac:
    def test_fig11_structure(self):
        study = rac.run_miss_study(TINY)
        text = study.render()
        assert "RAC NoRepl" in text
        assert study.rac_no_repl.rac.probes > 0
        # The RAC never changes the total number of L2 misses.
        assert study.rac_no_repl.misses.total == study.no_rac_no_repl.misses.total

    def test_replication_kills_remote_instruction_misses(self):
        study = rac.run_miss_study(TINY)
        assert study.no_rac_repl.misses.i_remote == 0

    def test_fig12_rows(self):
        fig = rac.run_perf_study(TINY)
        labels = [r.label for r in fig.rows]
        assert "1.25M4w NoRAC" in labels and "2M8w RAC" in labels


class TestOoo:
    def test_fig13_structure(self):
        study = ooo_experiment.run(TINY)
        assert study.uni_ooo_gain > 1.0
        assert study.mp_ooo_gain > 1.0
        ratios = study.step_ratios()
        assert "uni" in ratios and "mp" in ratios
        assert "OOO absolute gain" in study.render()


class TestReport:
    def test_tables_render(self):
        fig = offchip.run(1, TINY)
        assert "Figure 5" in time_table(fig)
        assert "I-Loc" in miss_table(fig)
        assert "legend" in bar_chart(fig)
        full = render(fig, misses=True, chart=True)
        assert "notes:" in full


class TestCli:
    def test_run_figure_dispatch(self):
        for name in ("fig3",):
            assert run_figure(name, TINY)

    def test_unknown_figure(self):
        with pytest.raises(ValueError):
            run_figure("fig99", TINY)

    def test_main_fig3(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out

    def test_figures_tuple_complete(self):
        assert set(FIGURES) == {
            "fig3", "fig5", "fig6", "fig7", "fig8", "fig10", "fig11", "fig12",
            "fig13",
        }
