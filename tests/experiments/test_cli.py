"""Tests for the command-line interface's argument handling."""

import argparse

import pytest

from repro.experiments.cli import _settings, main, run_figure
from repro.experiments.common import Settings


def parse(**over):
    defaults = dict(scale=0, uni_txns=0, mp_txns=0, seed=7, quick=False)
    defaults.update(over)
    return argparse.Namespace(**defaults)


class TestSettingsResolution:
    def test_defaults_are_paper(self):
        s = _settings(parse())
        assert s == Settings.paper()

    def test_quick_flag(self):
        s = _settings(parse(quick=True))
        assert s.scale == Settings.quick().scale
        assert s.uni_txns == Settings.quick().uni_txns

    def test_explicit_overrides_win(self):
        s = _settings(parse(scale=48, uni_txns=123, mp_txns=456))
        assert (s.scale, s.uni_txns, s.mp_txns) == (48, 123, 456)

    def test_override_on_top_of_quick(self):
        s = _settings(parse(quick=True, scale=40))
        assert s.scale == 40
        assert s.mp_txns == Settings.quick().mp_txns

    def test_seed_passthrough(self):
        assert _settings(parse(seed=99)).seed == 99

    def test_check_passthrough(self):
        assert _settings(parse(check="per-quantum")).check == "per-quantum"

    def test_namespace_without_check_still_works(self):
        # Older call sites build a Namespace without the --check field.
        assert _settings(parse()).check == "off"


class TestCsvExport:
    def test_fig7_writes_csv(self, tmp_path):
        tiny = Settings(scale=256, uni_txns=15, mp_txns=30, seed=3)
        run_figure("fig7", tiny, csv_dir=str(tmp_path))
        out = tmp_path / "fig7.csv"
        assert out.exists()
        header = out.read_text().splitlines()[0]
        assert header.startswith("configuration,")

    def test_fig3_no_csv_needed(self, tmp_path):
        run_figure("fig3", Settings.paper(), csv_dir=str(tmp_path))
        assert not list(tmp_path.iterdir())

    def test_missing_csv_dir_is_created(self, tmp_path):
        tiny = Settings(scale=256, uni_txns=15, mp_txns=30, seed=3)
        target = tmp_path / "does" / "not" / "exist"
        run_figure("fig7", tiny, csv_dir=str(target))
        assert (target / "fig7.csv").exists()


class TestMain:
    def test_bad_figure_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_ablations_accepted_as_choice(self, capsys):
        # Parse-only check: ensure the choice exists (run would be slow).
        with pytest.raises(SystemExit):
            main(["ablations", "--no-such-flag"])

    def test_selftest_accepted_as_choice(self, capsys):
        with pytest.raises(SystemExit):
            main(["selftest", "--no-such-flag"])

    def test_driver_error_gives_exit_code_not_traceback(self, capsys):
        # A bad scale blows up inside the trace generator; the CLI must
        # turn that into a one-line stderr message and a nonzero exit.
        code = main(["fig5", "--scale", "-5"])
        assert code == 1
        captured = capsys.readouterr()
        assert "repro-oltp:" in captured.err
        assert "Traceback" not in captured.err

    def test_successful_run_exits_zero(self, capsys, tmp_path):
        code = main(["fig3", "--csv", str(tmp_path / "new_dir")])
        assert code == 0
        assert (tmp_path / "new_dir").is_dir()

    def test_version_flag_prints_build_identity(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["--version"])
        assert exit_info.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro-oltp ")
        assert "code version" in out

    def test_serve_accepted_as_choice(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--no-such-flag"])

    def test_loadgen_accepted_as_choice(self, capsys):
        with pytest.raises(SystemExit):
            main(["loadgen", "--no-such-flag"])

    def test_loadgen_bad_corpus_target_rejected(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["loadgen", "fig99"])
        assert exit_info.value.code == 2
        assert "fig99" in capsys.readouterr().err

    def test_loadgen_bad_mix_rejected(self, capsys):
        code = main(["loadgen", "--mix", "nonsense"])
        assert code == 1
        err = capsys.readouterr().err
        assert "repro-oltp:" in err
        assert "Traceback" not in err

    def test_keyboard_interrupt_reports_completed(self, capsys, monkeypatch):
        import repro.experiments.cli as cli

        calls = []

        def fake_run_figure(name, settings, chart=False, csv_dir=None):
            calls.append(name)
            if len(calls) == 2:
                raise KeyboardInterrupt
            return f"[{name} output]"

        monkeypatch.setattr(cli, "run_figure", fake_run_figure)
        code = cli.main(["all", "--quick"])
        assert code == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "fig3" in err  # the one figure that completed


class TestStreamVerb:
    def test_stream_runs_and_reports(self, capsys):
        code = main(["stream", "--quick", "--scale-x", "2",
                     "--chunk-txns", "32"])
        assert code == 0
        out = capsys.readouterr().out
        assert "2x the configured count" in out
        assert "peak rss" in out
        assert "measured refs" in out

    def test_stream_rejects_target(self):
        with pytest.raises(SystemExit):
            main(["stream", "fig5"])

    def test_stream_matches_materialized_counts(self, capsys):
        """The stream verb replays the exact reference workload."""
        from repro.trace.generator import build_trace

        code = main(["stream", "--quick", "--scale-x", "1"])
        assert code == 0
        out = capsys.readouterr().out
        quick = Settings.quick()
        trace = build_trace(ncpus=1, scale=quick.scale,
                            txns=quick.uni_txns, seed=7)
        assert f"quanta:        {len(trace.quanta)}" in out
        refs = sum(len(q.refs) for q in trace.quanta)
        assert f"refs:          {refs}" in out


class TestScenarioVerb:
    def test_bare_scenario_lists(self, capsys):
        assert main(["scenario"]) == 0
        out = capsys.readouterr().out
        assert "registered scenarios" in out
        assert "zipf-uni" in out

    def test_list_names_every_registered_scenario(self, capsys):
        from repro.scenario import scenario_names

        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        names = scenario_names()
        assert len(names) >= 5
        for name in names:
            assert name in out

    def test_describe_shows_the_ladder(self, capsys):
        assert main(["scenario", "describe", "islands-mp8"]) == 0
        out = capsys.readouterr().out
        assert "hardware islands" in out
        assert "ladder" in out

    def test_describe_needs_a_name(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["scenario", "describe"])
        assert exit_info.value.code == 2
        assert "scenario list" in capsys.readouterr().err

    def test_unknown_action_rejected(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["scenario", "frobnicate"])
        assert exit_info.value.code == 2
        assert "frobnicate" in capsys.readouterr().err

    def test_list_rejects_a_name(self, capsys):
        with pytest.raises(SystemExit):
            main(["scenario", "list", "zipf-uni"])

    def test_name_rejected_outside_scenario_verb(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["profile", "fig5", "zipf-uni"])
        assert exit_info.value.code == 2
        assert "scenario" in capsys.readouterr().err

    def test_run_unknown_scenario_fails_fast_listing_names(self, capsys):
        """Satellite acceptance: a typo'd scenario name exits non-zero
        with a structured error listing every registered name — no
        traceback, no partial run."""
        from repro.scenario import scenario_names

        code = main(["scenario", "run", "no-such-scenario"])
        assert code == 1
        err = capsys.readouterr().err
        assert "repro-oltp: error:" in err
        assert "no-such-scenario" in err
        for name in scenario_names():
            assert name in err
        assert "Traceback" not in err

    def test_campaign_rejects_unknown_scenario_target(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["campaign", "no-such-scenario", "--quick"])
        assert exit_info.value.code == 2
        err = capsys.readouterr().err
        assert "no-such-scenario" in err
        assert "zipf-uni" in err  # the menu includes scenarios

    def test_run_executes_a_scenario_end_to_end(self, capsys):
        code = main(["scenario", "run", "read-heavy-uni",
                     "--scale", "256", "--uni-txns", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario:read-heavy-uni" in out
        assert "workload: 70%balance+30%scan" in out

    def test_run_writes_csv(self, capsys, tmp_path):
        code = main(["scenario", "run", "tpcb-uni",
                     "--scale", "256", "--uni-txns", "10",
                     "--csv", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "tpcb-uni.csv").exists()
