"""Tests for the command-line interface's argument handling."""

import argparse

import pytest

from repro.experiments.cli import _settings, main, run_figure
from repro.experiments.common import Settings


def parse(**over):
    defaults = dict(scale=0, uni_txns=0, mp_txns=0, seed=7, quick=False)
    defaults.update(over)
    return argparse.Namespace(**defaults)


class TestSettingsResolution:
    def test_defaults_are_paper(self):
        s = _settings(parse())
        assert s == Settings.paper()

    def test_quick_flag(self):
        s = _settings(parse(quick=True))
        assert s.scale == Settings.quick().scale
        assert s.uni_txns == Settings.quick().uni_txns

    def test_explicit_overrides_win(self):
        s = _settings(parse(scale=48, uni_txns=123, mp_txns=456))
        assert (s.scale, s.uni_txns, s.mp_txns) == (48, 123, 456)

    def test_override_on_top_of_quick(self):
        s = _settings(parse(quick=True, scale=40))
        assert s.scale == 40
        assert s.mp_txns == Settings.quick().mp_txns

    def test_seed_passthrough(self):
        assert _settings(parse(seed=99)).seed == 99


class TestCsvExport:
    def test_fig7_writes_csv(self, tmp_path):
        tiny = Settings(scale=256, uni_txns=15, mp_txns=30, seed=3)
        run_figure("fig7", tiny, csv_dir=str(tmp_path))
        out = tmp_path / "fig7.csv"
        assert out.exists()
        header = out.read_text().splitlines()[0]
        assert header.startswith("configuration,")

    def test_fig3_no_csv_needed(self, tmp_path):
        run_figure("fig3", Settings.paper(), csv_dir=str(tmp_path))
        assert not list(tmp_path.iterdir())


class TestMain:
    def test_bad_figure_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_ablations_accepted_as_choice(self, capsys):
        # Parse-only check: ensure the choice exists (run would be slow).
        with pytest.raises(SystemExit):
            main(["ablations", "--no-such-flag"])
