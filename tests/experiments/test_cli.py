"""Tests for the command-line interface's argument handling."""

import argparse

import pytest

from repro.experiments.cli import _settings, main, run_figure
from repro.experiments.common import Settings


def parse(**over):
    defaults = dict(scale=0, uni_txns=0, mp_txns=0, seed=7, quick=False)
    defaults.update(over)
    return argparse.Namespace(**defaults)


class TestSettingsResolution:
    def test_defaults_are_paper(self):
        s = _settings(parse())
        assert s == Settings.paper()

    def test_quick_flag(self):
        s = _settings(parse(quick=True))
        assert s.scale == Settings.quick().scale
        assert s.uni_txns == Settings.quick().uni_txns

    def test_explicit_overrides_win(self):
        s = _settings(parse(scale=48, uni_txns=123, mp_txns=456))
        assert (s.scale, s.uni_txns, s.mp_txns) == (48, 123, 456)

    def test_override_on_top_of_quick(self):
        s = _settings(parse(quick=True, scale=40))
        assert s.scale == 40
        assert s.mp_txns == Settings.quick().mp_txns

    def test_seed_passthrough(self):
        assert _settings(parse(seed=99)).seed == 99

    def test_check_passthrough(self):
        assert _settings(parse(check="per-quantum")).check == "per-quantum"

    def test_namespace_without_check_still_works(self):
        # Older call sites build a Namespace without the --check field.
        assert _settings(parse()).check == "off"


class TestCsvExport:
    def test_fig7_writes_csv(self, tmp_path):
        tiny = Settings(scale=256, uni_txns=15, mp_txns=30, seed=3)
        run_figure("fig7", tiny, csv_dir=str(tmp_path))
        out = tmp_path / "fig7.csv"
        assert out.exists()
        header = out.read_text().splitlines()[0]
        assert header.startswith("configuration,")

    def test_fig3_no_csv_needed(self, tmp_path):
        run_figure("fig3", Settings.paper(), csv_dir=str(tmp_path))
        assert not list(tmp_path.iterdir())

    def test_missing_csv_dir_is_created(self, tmp_path):
        tiny = Settings(scale=256, uni_txns=15, mp_txns=30, seed=3)
        target = tmp_path / "does" / "not" / "exist"
        run_figure("fig7", tiny, csv_dir=str(target))
        assert (target / "fig7.csv").exists()


class TestMain:
    def test_bad_figure_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_ablations_accepted_as_choice(self, capsys):
        # Parse-only check: ensure the choice exists (run would be slow).
        with pytest.raises(SystemExit):
            main(["ablations", "--no-such-flag"])

    def test_selftest_accepted_as_choice(self, capsys):
        with pytest.raises(SystemExit):
            main(["selftest", "--no-such-flag"])

    def test_driver_error_gives_exit_code_not_traceback(self, capsys):
        # A bad scale blows up inside the trace generator; the CLI must
        # turn that into a one-line stderr message and a nonzero exit.
        code = main(["fig5", "--scale", "-5"])
        assert code == 1
        captured = capsys.readouterr()
        assert "repro-oltp:" in captured.err
        assert "Traceback" not in captured.err

    def test_successful_run_exits_zero(self, capsys, tmp_path):
        code = main(["fig3", "--csv", str(tmp_path / "new_dir")])
        assert code == 0
        assert (tmp_path / "new_dir").is_dir()

    def test_version_flag_prints_build_identity(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["--version"])
        assert exit_info.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro-oltp ")
        assert "code version" in out

    def test_serve_accepted_as_choice(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--no-such-flag"])

    def test_loadgen_accepted_as_choice(self, capsys):
        with pytest.raises(SystemExit):
            main(["loadgen", "--no-such-flag"])

    def test_loadgen_bad_corpus_target_rejected(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["loadgen", "fig99"])
        assert exit_info.value.code == 2
        assert "fig99" in capsys.readouterr().err

    def test_loadgen_bad_mix_rejected(self, capsys):
        code = main(["loadgen", "--mix", "nonsense"])
        assert code == 1
        err = capsys.readouterr().err
        assert "repro-oltp:" in err
        assert "Traceback" not in err

    def test_keyboard_interrupt_reports_completed(self, capsys, monkeypatch):
        import repro.experiments.cli as cli

        calls = []

        def fake_run_figure(name, settings, chart=False, csv_dir=None):
            calls.append(name)
            if len(calls) == 2:
                raise KeyboardInterrupt
            return f"[{name} output]"

        monkeypatch.setattr(cli, "run_figure", fake_run_figure)
        code = cli.main(["all", "--quick"])
        assert code == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "fig3" in err  # the one figure that completed


class TestStreamVerb:
    def test_stream_runs_and_reports(self, capsys):
        code = main(["stream", "--quick", "--scale-x", "2",
                     "--chunk-txns", "32"])
        assert code == 0
        out = capsys.readouterr().out
        assert "2x the configured count" in out
        assert "peak rss" in out
        assert "measured refs" in out

    def test_stream_rejects_target(self):
        with pytest.raises(SystemExit):
            main(["stream", "fig5"])

    def test_stream_matches_materialized_counts(self, capsys):
        """The stream verb replays the exact reference workload."""
        from repro.trace.generator import build_trace

        code = main(["stream", "--quick", "--scale-x", "1"])
        assert code == 0
        out = capsys.readouterr().out
        quick = Settings.quick()
        trace = build_trace(ncpus=1, scale=quick.scale,
                            txns=quick.uni_txns, seed=7)
        assert f"quanta:        {len(trace.quanta)}" in out
        refs = sum(len(q.refs) for q in trace.quanta)
        assert f"refs:          {refs}" in out
