"""The headline claims must hold across workload seeds.

The shape suite pins one seed; this file re-checks the two claims the
paper's conclusions rest on — associativity beats capacity, and
communication dominates the multiprocessor — for different random
workloads, guarding against accidental seed-tuning.
"""

import pytest

from repro.core.machine import MachineConfig
from repro.core.system import simulate
from repro.trace.generator import build_trace

SCALE = 32


@pytest.mark.parametrize("seed", [11, 23, 101])
def test_uni_onchip_2m8w_beats_offchip_8m1w(seed):
    trace = build_trace(ncpus=1, scale=SCALE, txns=250, seed=seed)
    base = simulate(MachineConfig.base(1, scale=SCALE), trace)
    soc = simulate(MachineConfig.integrated_l2(1, scale=SCALE), trace)
    assert soc.misses.total < base.misses.total, f"seed {seed}"
    assert soc.speedup_over(base) > 1.3, f"seed {seed}"


@pytest.mark.parametrize("seed", [11, 23])
def test_mp_dirty_dominance_and_integration_gain(seed):
    trace = build_trace(ncpus=8, scale=SCALE, txns=700, seed=seed)
    base = simulate(MachineConfig.base(8, scale=SCALE), trace)
    full = simulate(MachineConfig.fully_integrated(8, scale=SCALE), trace)
    big_assoc = simulate(
        MachineConfig.base(8, l2_assoc=4, scale=SCALE), trace
    )
    assert big_assoc.misses.dirty_share > 0.5, f"seed {seed}"
    assert 1.25 < full.speedup_over(base) < 1.8, f"seed {seed}"
    assert base.breakdown.remote_stall > base.breakdown.local_stall
