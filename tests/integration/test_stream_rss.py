"""RSS-guard regression: streaming keeps memory flat as workloads grow.

Tier-2 (marked ``slow``; deselected by default, run with ``-m slow``).
Measures peak RSS in fresh subprocesses — ``ru_maxrss`` is a
process-lifetime high-water mark, so in-process before/after readings
would be meaningless — and asserts the scale-out contract: a streamed
run 100x the reference transaction count must peak within 2x of the
*reference-sized materialized* run's RSS.  A regression that
materializes the stream anywhere on the replay path (engine, store,
validation) blows this bound immediately at 100x.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

SCALE_X = 100
RSS_LIMIT = 2.0

#: Quick-sized reference workload so the 100x run stays test-sized.
REF = dict(scale=64, txns=120, seed=7)

CHILD = r"""
import json, resource, sys, time

mode, scale, txns, seed = (
    sys.argv[1], int(sys.argv[2]), int(sys.argv[3]), int(sys.argv[4]))
from repro.core.machine import MachineConfig
from repro.core.system import simulate

machine = MachineConfig(label="rss-guard", ncpus=1)
if mode == "materialized":
    from repro.trace.generator import build_trace

    trace = build_trace(ncpus=1, scale=scale, txns=txns, seed=seed)
    result = simulate(machine, trace, engine="fast")
    measured = trace.measured_refs
else:
    from repro.trace.generator import stream_trace

    trace = stream_trace(ncpus=1, scale=scale, txns=txns, seed=seed)
    result = simulate(machine, trace, engine="fast")
    measured = trace.measured_refs
print(json.dumps({
    "measured_refs": measured,
    "cycles": result.breakdown.total,
    "maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
}))
"""


def _measure(mode: str, txns: int) -> dict:
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", CHILD, mode, str(REF["scale"]), str(txns),
         str(REF["seed"])],
        check=True, capture_output=True, text=True, env=env,
    )
    return json.loads(out.stdout)


@pytest.mark.slow
def test_streamed_100x_rss_within_2x_of_reference():
    reference = _measure("materialized", REF["txns"])
    streamed = _measure("streamed", REF["txns"] * SCALE_X)

    rss_ratio = streamed["maxrss_kb"] / max(1, reference["maxrss_kb"])
    refs_ratio = (streamed["measured_refs"]
                  / max(1, reference["measured_refs"]))
    detail = {"reference": reference, "streamed": streamed,
              "rss_ratio": rss_ratio, "refs_ratio": refs_ratio}
    # The streamed run really is ~100x the work...
    assert refs_ratio >= 0.9 * SCALE_X, detail
    # ...at essentially reference-run memory.
    assert rss_ratio <= RSS_LIMIT, detail
