"""End-to-end shape tests: the paper's qualitative claims must hold.

These run the real experiment drivers at the paper scale factor (32)
with slightly shortened transaction counts; they are the contract the
benchmark harness regenerates at full length.  Each test names the
paper section/figure it checks.  Marginal comparisons (2M4w vs 8M1w
misses, the 1M8w capacity cliff) are placement-sensitive at coarser
scales, which is why this suite does not shrink further.
"""

import pytest

from repro.experiments import integration, offchip, onchip, rac
from repro.experiments import ooo as ooo_experiment
from repro.experiments.common import Settings, clear_trace_cache

SETTINGS = Settings(scale=32, uni_txns=300, mp_txns=800, seed=7)


@pytest.fixture(autouse=True, scope="module")
def _fresh_cache():
    clear_trace_cache()
    yield
    clear_trace_cache()


class TestFigure5Uniprocessor:
    @pytest.fixture(scope="class")
    def fig(self):
        return offchip.run(1, SETTINGS)

    def test_misses_fall_with_size(self, fig):
        sizes = [fig.row(f"{s}M1w").miss_norm for s in (1, 2, 4, 8)]
        assert sizes == sorted(sizes, reverse=True)

    def test_associativity_cuts_misses_at_every_size(self, fig):
        for s in (1, 2, 4, 8):
            assert fig.row(f"{s}M4w").miss_norm < fig.row(f"{s}M1w").miss_norm

    def test_2m4w_beats_8m1w_on_misses(self, fig):
        """Section 3's surprise: conflict misses dominate the big DM cache."""
        assert fig.row("2M4w").miss_norm < fig.row("8M1w").miss_norm

    def test_large_associative_cache_nearly_eliminates_misses(self, fig):
        assert fig.row("8M4w").miss_norm < 12  # paper: ~2 (a ~50x cut)

    def test_conservative_matches_base_at_8m4w(self, fig):
        """Uniprocessors are insensitive to memory latency with big L2s."""
        cons = fig.row("Cons 8M4w").time_norm
        base = fig.row("8M4w").time_norm
        assert abs(cons - base) / base < 0.06

    def test_associative_beats_direct_mapped_except_at_8mb(self, fig):
        for s in (1, 2, 4):
            assert fig.row(f"{s}M4w").time_norm < fig.row(f"{s}M1w").time_norm
        # At 8 MB the lower direct-mapped hit latency closes the gap:
        # the paper finds 1-way narrowly *faster*; we require the gap
        # to have collapsed to a few percent either way.
        gap = fig.row("8M4w").time_norm - fig.row("8M1w").time_norm
        assert gap > -0.06 * fig.row("8M1w").time_norm

    def test_no_remote_traffic_on_uniprocessor(self, fig):
        for row in fig.rows:
            assert row.result.misses.remote == 0


class TestFigure6Multiprocessor:
    @pytest.fixture(scope="class")
    def fig(self):
        return offchip.run(8, SETTINGS)

    def test_communication_floor(self, fig):
        """Bigger caches cannot remove communication misses."""
        assert fig.row("8M4w").miss_norm > 10

    def test_remote_stall_dominates(self, fig):
        b = fig.row("8M4w").result.breakdown
        assert b.remote_stall > b.local_stall
        assert b.remote_stall > b.busy

    def test_dirty_share_grows_with_cache_effectiveness(self, fig):
        assert (
            fig.row("8M4w").result.misses.dirty_share
            > fig.row("1M1w").result.misses.dirty_share
        )

    def test_absolute_3hop_misses_increase(self, fig):
        """The paper's irony: better caching makes MORE 3-hop misses."""
        assert (
            fig.row("8M4w").result.misses.d_remote_dirty
            > fig.row("1M1w").result.misses.d_remote_dirty
        )

    def test_dirty_share_majority_at_8m4w(self, fig):
        assert fig.row("8M4w").result.misses.dirty_share > 0.5

    def test_associative_never_loses_in_mp(self, fig):
        for s in (1, 2, 4, 8):
            assert fig.row(f"{s}M4w").time_norm <= fig.row(f"{s}M1w").time_norm * 1.02

    def test_conservative_clearly_worse_in_mp(self, fig):
        """MP performance IS sensitive to remote latencies."""
        assert fig.row("Cons 8M4w").time_norm > fig.row("8M4w").time_norm * 1.04

    def test_remote_misses_dominate_local(self, fig):
        m = fig.row("8M4w").result.misses
        assert m.remote > 5 * (m.i_local + m.d_local)


class TestFigure7Uniprocessor:
    @pytest.fixture(scope="class")
    def fig(self):
        return onchip.run(1, SETTINGS)

    def test_2mb_associative_beats_8mb_direct_mapped_misses(self, fig):
        assert fig.row("2M8w").miss_norm < 100
        assert fig.row("2M4w").miss_norm < 100

    def test_1mb_too_small(self, fig):
        assert fig.row("1M8w").miss_norm > 100

    def test_integration_speedup_at_least_1_3(self, fig):
        assert fig.speedup("2M8w") > 1.3  # paper: >1.4x

    def test_associativity_ladder(self, fig):
        ladder = [fig.row(f"2M{w}w").miss_norm for w in (8, 4, 2, 1)]
        assert ladder == sorted(ladder)

    def test_dram_loses_to_sram_on_uniprocessor(self, fig):
        assert fig.row("8M8w DRAM").time_norm > fig.row("2M8w").time_norm

    def test_1m8w_still_faster_than_base_despite_misses(self, fig):
        """Lower hit latency outweighs the extra misses (paper text)."""
        assert fig.row("1M8w").time_norm < 100


class TestFigure8Multiprocessor:
    @pytest.fixture(scope="class")
    def fig(self):
        return onchip.run(8, SETTINGS)

    def test_l2_integration_gain_smaller_than_uni(self, fig):
        gain = fig.speedup("2M8w")
        assert 1.05 < gain < 1.6  # paper: ~1.2x vs 1.4x for uni

    def test_dram_small_loss_in_mp(self, fig):
        ratio = fig.row("8M8w DRAM").time_norm / fig.row("2M8w").time_norm
        assert 0.95 < ratio < 1.35  # paper: ~10% loss

    def test_dram_has_fewest_misses(self, fig):
        assert fig.row("8M8w DRAM").miss_norm == min(r.miss_norm for r in fig.rows)


class TestFigure10Integration:
    @pytest.fixture(scope="class")
    def study(self):
        return integration.run(SETTINGS)

    def test_uni_gain_comes_from_l2_step(self, study):
        l2 = study.uni.speedup("L2")
        mc_extra = study.uni.speedup("L2+MC", over="L2")
        assert l2 > 1.3
        assert abs(mc_extra - 1.0) < 0.08  # MC adds ~nothing on uni

    def test_uni_full_speedup_about_1_4(self, study):
        assert 1.25 < study.uni_full_speedup < 1.75

    def test_mp_full_speedup_about_1_4(self, study):
        assert 1.3 < study.mp_full_speedup < 1.75

    def test_mp_gain_split_between_l2_and_system(self, study):
        assert study.mp_l2_step > 1.1
        assert study.mp_system_step > 1.1

    def test_conservative_speedup_1_5_to_1_7(self, study):
        assert 1.4 < study.conservative_speedup < 1.8  # paper: 1.56x

    def test_l2_mc_step_roughly_neutral_in_mp(self, study):
        ratio = study.mp.speedup("L2+MC", over="L2")
        assert abs(ratio - 1.0) < 0.08  # paper: "virtually no impact"


class TestFigures11And12Rac:
    @pytest.fixture(scope="class")
    def miss_study(self):
        return rac.run_miss_study(SETTINGS)

    @pytest.fixture(scope="class")
    def perf(self):
        return rac.run_perf_study(SETTINGS)

    def test_rac_does_not_change_total_misses(self, miss_study):
        assert (
            miss_study.rac_no_repl.misses.total
            == miss_study.no_rac_no_repl.misses.total
        )

    def test_rac_localizes_instruction_misses(self, miss_study):
        without = miss_study.no_rac_no_repl.misses
        with_rac = miss_study.rac_no_repl.misses
        assert with_rac.i_remote < without.i_remote * 0.2
        assert with_rac.i_local > without.i_local

    def test_rac_increases_3hop_misses(self, miss_study):
        assert (
            miss_study.rac_no_repl.misses.d_remote_dirty
            > miss_study.no_rac_no_repl.misses.d_remote_dirty
        )

    def test_rac_hit_rate_drops_with_replication(self, miss_study):
        assert miss_study.hit_rate_no_repl > miss_study.hit_rate_repl > 0.05

    def test_rac_raises_invalidation_rate(self, miss_study):
        assert (
            miss_study.rac_no_repl.protocol.invalidations_per_write
            > miss_study.no_rac_no_repl.protocol.invalidations_per_write
        )

    def test_rac_benefit_is_small(self, perf):
        gain = 1 - perf.row("1M4w RAC").time_norm / 100.0
        assert 0.0 < gain < 0.15  # paper: 4.3%

    def test_bigger_l2_beats_rac(self, perf):
        assert perf.row("1.25M4w NoRAC").time_norm < perf.row("1M4w RAC").time_norm

    def test_rac_useless_at_2m8w(self, perf):
        ratio = perf.speedup("2M8w RAC", over="2M8w NoRAC")
        assert abs(ratio - 1.0) < 0.05

    def test_rac_hit_rate_low_at_2m8w(self, perf):
        assert perf.row("2M8w RAC").result.rac.hit_rate < 0.25  # paper <10%


class TestFigure13OutOfOrder:
    @pytest.fixture(scope="class")
    def study(self):
        return ooo_experiment.run(SETTINGS)

    def test_absolute_gains(self, study):
        assert 1.2 < study.uni_ooo_gain < 1.8   # paper ~1.4x
        assert 1.1 < study.mp_ooo_gain < 1.6    # paper ~1.3x

    def test_uni_gains_exceed_mp_gains(self, study):
        """Remote latencies are harder to hide (paper Section 7)."""
        assert study.uni_ooo_gain > study.mp_ooo_gain

    def test_relative_integration_gains_match_inorder(self, study):
        r = study.step_ratios()
        assert r["uni"]["L2 ooo"] == pytest.approx(
            r["uni"]["L2 in-order"], rel=0.12
        )
        assert r["mp"]["All ooo"] == pytest.approx(
            r["mp"]["All in-order"], rel=0.12
        )
