#!/usr/bin/env python
"""Walk the integration ladder: Base -> +L2 -> +MC -> +CC/NR.

Reproduces the core of the paper's Figure 10 on both a uniprocessor
and an 8-node multiprocessor, printing ASCII stacked bars of the
normalized execution-time breakdown at each integration level.

Run:  python examples/integration_ladder.py [--scale N]
"""

import argparse

from repro.experiments.common import Settings
from repro.experiments.integration import run
from repro.experiments.report import bar_chart


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=48,
                        help="scale-down factor (smaller = slower, more faithful)")
    args = parser.parse_args()
    settings = Settings(scale=args.scale, uni_txns=300, mp_txns=800, seed=21)

    print("Simulating the integration ladder (this takes ~30s)...\n")
    study = run(settings)

    print(bar_chart(study.uni))
    print()
    print(bar_chart(study.mp))
    print()
    print(f"uniprocessor full-integration speedup : {study.uni_full_speedup:.2f}x")
    print(f"8-CPU full-integration speedup        : {study.mp_full_speedup:.2f}x")
    print(f"  - from integrating the L2            : {study.mp_l2_step:.2f}x")
    print(f"  - from integrating MC + CC/NR        : {study.mp_system_step:.2f}x")
    print(f"8-CPU speedup vs Conservative Base    : {study.conservative_speedup:.2f}x")
    print()
    print("Paper: ~1.4x total for both machine sizes; the MP gain splits")
    print("roughly evenly between the L2 step and the system-logic step,")
    print("and reaches 1.56x against the conservative off-chip design.")


if __name__ == "__main__":
    main()
