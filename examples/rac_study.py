#!/usr/bin/env python
"""Should a fully integrated chip keep an off-chip remote access cache?

Evaluates an 8 MB 8-way RAC against the alternative of spending its
on-chip tag area on a bigger L2, with and without OS instruction-page
replication — the paper's Section 6 question, answered with the same
three-way comparison.

Run:  python examples/rac_study.py
"""

from repro import MachineConfig, build_trace, simulate
from repro.params import MB

SCALE = 48


def machine(l2_kb, assoc, rac=False, repl=True):
    return MachineConfig.fully_integrated(
        8,
        l2_size=l2_kb * 1024,
        l2_assoc=assoc,
        rac_size=8 * MB if rac else None,
        replicate_code=repl,
        scale=SCALE,
    )


def main() -> None:
    print("Generating 8-CPU TPC-B trace...")
    trace = build_trace(ncpus=8, txns=800, scale=SCALE, seed=55)

    plain = simulate(machine(1024, 4, rac=False, repl=False), trace)
    rac_only = simulate(machine(1024, 4, rac=True, repl=False), trace)
    repl_only = simulate(machine(1024, 4, rac=False, repl=True), trace)
    rac_repl = simulate(machine(1024, 4, rac=True, repl=True), trace)
    bigger_l2 = simulate(machine(1280, 4, rac=False, repl=True), trace)

    base_time = plain.exec_time
    print("\n1 MB 4-way on-chip L2, fully integrated node:")
    rows = [
        ("no RAC, no replication", plain),
        ("RAC, no replication", rac_only),
        ("no RAC, code replication", repl_only),
        ("RAC + code replication", rac_repl),
        ("1.25 MB L2 instead of RAC tags", bigger_l2),
    ]
    for label, r in rows:
        hit = f", RAC hit rate {r.rac.hit_rate:.0%}" if r.rac.probes else ""
        print(
            f"  {label:32s} time {100 * r.exec_time / base_time:5.1f} "
            f"| remote misses {r.misses.remote:6d} "
            f"| 3-hop {r.misses.d_remote_dirty:6d}{hit}"
        )

    print("\nVerdict:")
    if bigger_l2.exec_time <= rac_repl.exec_time:
        print("  spending the RAC's tag area on more L2 wins — the paper's")
        print("  conclusion: a RAC is not viable for a fully integrated design.")
    else:
        print("  the RAC wins at this design point (unlike the paper).")

    print("\nWhy the RAC disappoints: it converts 2-hop misses to local hits")
    print("but retains lines longer, turning other nodes' 2-hop misses into")
    print(f"3-hop misses ({plain.misses.d_remote_dirty} -> "
          f"{rac_only.misses.d_remote_dirty} dirty misses here).")


if __name__ == "__main__":
    main()
