#!/usr/bin/env python
"""Dissect the OLTP workload: which structure generates which traffic?

Builds a trace, prints the per-region reference census (who is read,
written, instruction-fetched), then attributes L2 misses per region
for two cache organizations — making visible *why* the 8 MB
direct-mapped cache loses to the 2 MB 8-way one: the big cache's
misses are conflict misses on code and private server memory, while
the small associative cache's misses are the irreducible random
account traffic.

Run:  python examples/workload_census.py
"""

from repro import MachineConfig, build_trace
from repro.trace.census import attribute_misses, census


def main() -> None:
    print("Generating uniprocessor TPC-B trace...")
    trace = build_trace(ncpus=1, txns=400, scale=32, seed=7)

    print()
    print(census(trace).render())

    for machine in (
        MachineConfig.base(1, scale=32),                      # 8M1w off-chip
        MachineConfig.integrated_l2(1, scale=32),             # 2M8w on-chip
    ):
        print()
        print(attribute_misses(trace, machine).render())

    print()
    print("Reading: the direct-mapped cache keeps missing on hot text and")
    print("PGA lines (conflicts); the associative cache's residue is the")
    print("random account/index traffic no cache can hold.")


if __name__ == "__main__":
    main()
