#!/usr/bin/env python
"""Drive the OLTP engine directly — no simulator, just the database.

Shows that the workload substrate is a real transaction processor:
TPC-B transactions update balances under locks, generate redo, commit
through the log writer, and satisfy the TPC-B consistency conditions
at the end.  Also prints the buffer pool and latch statistics that
drive the memory-system behaviour everywhere else in this project.

Run:  python examples/tpcb_engine_demo.py
"""

from repro.oltp.config import WorkloadConfig
from repro.oltp.engine import OracleEngine

TXNS = 2000


def main() -> None:
    config = WorkloadConfig.build(ncpus=4, scale=64, seed=99)
    engine = OracleEngine(config)

    print(f"TPC-B database: {config.tpcb.branches} branches, "
          f"{config.tpcb.tellers} tellers, {config.tpcb.accounts:,} accounts")
    print(f"servers: {config.num_servers} ({config.servers_per_cpu} per CPU) "
          f"+ LGWR + DBWR daemons")
    print(f"block buffer: {config.buffer_frames:,} frames of 2 KB\n")

    resident = engine.prewarm()
    print(f"prewarmed {resident:,} blocks into the buffer pool")

    print(f"running {TXNS} transactions...")
    engine.run(TXNS)

    engine.db.check_consistency()
    print("TPC-B consistency conditions: OK "
          "(accounts == branches == tellers, per-branch account sums match)\n")

    s = engine.stats
    print(f"committed            : {s.committed}")
    print(f"remote-branch txns   : {s.remote_account_txns} "
          f"({s.remote_account_txns / s.committed:.0%}; TPC-B targets ~15%)")
    print(f"LGWR group commits   : {s.lgwr_activations} "
          f"(batch of {config.commit_batch})")
    print(f"DBWR checkpoints     : {s.dbwr_activations}")

    pool = engine.pool.stats
    print(f"\nbuffer pool          : {pool.gets:,} gets, "
          f"{pool.hit_rate:.1%} hit rate, {pool.disk_writes} block writes")
    locks = engine.locks.stats
    print(f"lock manager         : {locks.acquires:,} enqueues, "
          f"{locks.latch_gets:,} latch gets, {locks.conflicts} conflicts")
    log = engine.log.stats
    print(f"redo log             : {log.bytes_appended:,} bytes in "
          f"{log.appends:,} records, {log.flushes} forced flushes")

    total = int(engine.db.account_balance.sum())
    print(f"\ntotal money movement : net {total:+,} across all accounts "
          "(conserved in branches and tellers)")


if __name__ == "__main__":
    main()
