#!/usr/bin/env python
"""Explore the L2 design space for OLTP: capacity vs associativity.

Sweeps on-chip L2 size and associativity on one workload trace and
prints a misses-per-transaction matrix plus the execution-time knee.
This is the experiment behind the paper's most striking claim: a 2 MB
4/8-way on-chip cache out-filters an 8 MB direct-mapped off-chip one,
because what the big cache was absorbing were *conflict* misses.

Run:  python examples/cache_design_space.py [--ncpus 1|8]
"""

import argparse

from repro import MachineConfig, build_trace, simulate
from repro.params import MB

SIZES_MB = (1, 2, 4, 8)
WAYS = (1, 2, 4, 8)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ncpus", type=int, default=1, choices=(1, 8))
    parser.add_argument("--scale", type=int, default=48)
    args = parser.parse_args()

    txns = 300 if args.ncpus == 1 else 800
    print(f"Generating trace ({args.ncpus} CPU(s), {txns} transactions)...")
    trace = build_trace(ncpus=args.ncpus, txns=txns, scale=args.scale, seed=33)

    results = {}
    for size_mb in SIZES_MB:
        for ways in WAYS:
            machine = MachineConfig.integrated_l2(
                args.ncpus, l2_size=size_mb * MB, l2_assoc=ways, scale=args.scale
            )
            results[(size_mb, ways)] = simulate(machine, trace)

    offchip = simulate(MachineConfig.base(args.ncpus, scale=args.scale), trace)

    print("\nL2 misses per transaction (on-chip L2, SRAM):")
    header = "size \\ ways" + "".join(f"{w:>9}" for w in WAYS)
    print(header)
    for size_mb in SIZES_MB:
        cells = "".join(
            f"{results[(size_mb, w)].misses.total / txns:9.1f}" for w in WAYS
        )
        print(f"{size_mb:>4} MB    {cells}")
    print(
        f"\noff-chip 8 MB direct-mapped Base: "
        f"{offchip.misses.total / txns:.1f} misses/txn"
    )

    best = min(results.items(), key=lambda kv: kv[1].exec_time)
    (size_mb, ways), result = best
    print(f"\nfastest on-chip point: {size_mb} MB {ways}-way "
          f"({result.speedup_over(offchip):.2f}x vs off-chip Base)")
    beat = [
        f"{s}M{w}w"
        for (s, w), r in sorted(results.items())
        if r.misses.total < offchip.misses.total
    ]
    print(f"on-chip points with FEWER misses than the 8M1w off-chip cache: "
          f"{', '.join(beat) or 'none'}")


if __name__ == "__main__":
    main()
