#!/usr/bin/env python
"""Quickstart: how much does chip-level integration buy on OLTP?

Generates a TPC-B workload trace, replays it against the paper's
aggressive off-chip Base design and the fully integrated (Alpha
21364-style) design, and prints the speedup with its execution-time
breakdown.

Run:  python examples/quickstart.py
"""

from repro import MachineConfig, build_trace, simulate


def main() -> None:
    print("Generating the TPC-B workload trace (8 CPUs)...")
    trace = build_trace(ncpus=8, txns=800, seed=42)
    print(
        f"  {trace.total_refs:,} memory references from "
        f"{trace.engine_stats.committed} transactions "
        f"({trace.config.num_servers} server processes)\n"
    )

    base = simulate(MachineConfig.base(8), trace)
    soc = simulate(MachineConfig.fully_integrated(8), trace)

    for result in (base, soc):
        print(result.summary())
    print()

    speedup = soc.speedup_over(base)
    print(f"Full chip-level integration speedup: {speedup:.2f}x")
    print("(the paper reports ~1.43x for the 8-processor configuration)")
    print()
    print(
        f"Where the time went (Base): CPU busy {base.cpu_utilization:.0%}, "
        f"kernel share of busy time {base.kernel_fraction:.0%}, "
        f"3-hop share of misses {base.misses.dirty_share:.0%}"
    )


if __name__ == "__main__":
    main()
