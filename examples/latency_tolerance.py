#!/usr/bin/env python
"""How much memory latency can an out-of-order core actually hide?

Runs the same workload through the in-order and out-of-order timing
models on the Base and fully-integrated machines, and also computes a
"perfect memory" bound (busy time only).  The paper's Section-7 point
falls out: OLTP's dependent memory chains leave most of the stall time
intact, so integration (attacking the latencies themselves) and OOO
(hiding them) are complementary, similar-sized levers.

Run:  python examples/latency_tolerance.py
"""

from repro import MachineConfig, build_trace, simulate

SCALE = 48


def main() -> None:
    print("Generating 8-CPU TPC-B trace...")
    trace = build_trace(ncpus=8, txns=800, scale=SCALE, seed=13)

    rows = []
    for model in ("inorder", "ooo"):
        for factory in (MachineConfig.base, MachineConfig.fully_integrated):
            machine = factory(8, scale=SCALE, cpu_model=model)
            rows.append(simulate(machine, trace))

    ino_base, ino_full, ooo_base, ooo_full = rows
    perfect = ino_base.breakdown.busy  # no memory stalls at all

    print("\ncycles per transaction (8 CPUs):")
    for label, r in (
        ("in-order, Base (off-chip)", ino_base),
        ("in-order, fully integrated", ino_full),
        ("out-of-order, Base", ooo_base),
        ("out-of-order, fully integrated", ooo_full),
    ):
        b = r.breakdown
        stall_share = 1 - b.busy / b.total
        print(f"  {label:32s} {r.cycles_per_txn:9.0f}  (stall {stall_share:.0%})")
    ideal = perfect / max(1, trace.measured_txns)
    print(f"  {'perfect memory bound':32s} {ideal:9.0f}")

    print("\nlevers, measured:")
    print(f"  integration alone (in-order)  : {ino_base.exec_time / ino_full.exec_time:.2f}x")
    print(f"  OOO alone (Base memory)       : {ino_base.exec_time / ooo_base.exec_time:.2f}x")
    print(f"  both together                 : {ino_base.exec_time / ooo_full.exec_time:.2f}x")
    print(f"  headroom left vs perfect      : "
          f"{ooo_full.breakdown.total / perfect:.1f}x")
    print("\nPaper Section 9: once integration has cut the latencies, the")
    print("remaining stall calls for thread-level parallelism (SMT/CMP),")
    print("not wider issue — see `repro-oltp ablations` for the CMP study.")


if __name__ == "__main__":
    main()
