"""Supervision overhead benchmark: supervised vs bare worker pool.

Runs the Figure 6 sweep (quick sizes, trace pre-archived so workers
only simulate) through a bare ``ProcessPoolExecutor`` and through the
:class:`~repro.runner.SupervisedExecutor`, interleaved over several
rounds, and asserts the supervised minimum stays within
``BENCH_RESILIENCE_LIMIT`` (default 5%) of the bare minimum — the
fault-tolerance machinery must be free when nothing faults.

Dumps ``BENCH_resilience.json`` (override with ``BENCH_RESILIENCE_OUT``).
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor

from repro.experiments.common import Settings, trace_spec
from repro.experiments.offchip import sweep_configs
from repro.runner import SimJob, SupervisedExecutor, default_trace_store
from repro.runner.supervisor import _worker_init, _worker_run
from repro.runner.tracestore import DEFAULT_CAPACITY

OUT = os.environ.get("BENCH_RESILIENCE_OUT", "BENCH_resilience.json")
LIMIT = float(os.environ.get("BENCH_RESILIENCE_LIMIT", "1.05"))
WORKERS = 4
ROUNDS = 3


def fig6_jobs(settings: Settings):
    spec = trace_spec(8, settings)
    return [SimJob(spec=spec, machine=machine)
            for _, machine in sweep_configs(8, settings.scale)]


def test_bench_supervision_overhead(tmp_path_factory):
    settings = Settings.quick()
    jobs = fig6_jobs(settings)

    store = default_trace_store()
    previous_spill = store.spill_dir
    store.spill_dir = str(tmp_path_factory.mktemp("bench-resilience-traces"))
    try:
        # Archive the trace up front: both pools then measure pure
        # dispatch + simulation, not workload generation.
        store.ensure_archived(jobs[0].spec)

        bare_pool = ProcessPoolExecutor(
            max_workers=WORKERS, initializer=_worker_init,
            initargs=(store.spill_dir, DEFAULT_CAPACITY),
        )
        supervised = SupervisedExecutor(WORKERS, store)

        def bare_round():
            futures = [bare_pool.submit(_worker_run, job) for job in jobs]
            return [f.result() for f in futures]

        def supervised_round():
            outcomes = supervised.run(jobs)
            assert all(o.ok for o in outcomes)
            return outcomes

        # First pass warms both pools (fork + import cost) untimed.
        bare_round()
        supervised_round()

        bare_times, supervised_times = [], []
        for _ in range(ROUNDS):
            start = time.perf_counter()
            bare_round()
            bare_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            supervised_round()
            supervised_times.append(time.perf_counter() - start)

        bare_pool.shutdown()
        supervised.close()
    finally:
        store.spill_dir = previous_spill

    bare_best = min(bare_times)
    supervised_best = min(supervised_times)
    ratio = supervised_best / bare_best
    payload = {
        "settings": "quick",
        "figure": "fig6",
        "jobs": len(jobs),
        "workers": WORKERS,
        "rounds": ROUNDS,
        "cpu_count": os.cpu_count(),
        "bare_seconds": [round(t, 4) for t in bare_times],
        "supervised_seconds": [round(t, 4) for t in supervised_times],
        "bare_best": round(bare_best, 4),
        "supervised_best": round(supervised_best, 4),
        "overhead_ratio": round(ratio, 4),
        "limit": LIMIT,
    }
    with open(OUT, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)

    assert ratio <= LIMIT, (
        f"supervision overhead {ratio:.3f}x exceeds the {LIMIT:.2f}x limit "
        f"(bare {bare_best:.3f}s vs supervised {supervised_best:.3f}s)"
    )
