"""Streaming scale-out benchmark: 100x the workload at flat memory.

Runs two fresh subprocesses (``ru_maxrss`` is a process-lifetime
high-water mark, so each measurement needs its own interpreter):

* **reference** — the paper-sized uniprocessor workload (400 measured
  transactions), fully materialized and replayed on the fast engine;
* **streamed** — the same workload at ``BENCH_STREAM_SCALE_X`` (default
  100) times the measured transaction count, streamed chunk-by-chunk
  from the generator straight into the fast engine, never
  materializing the trace.

The payload lands in ``BENCH_stream.json`` (override with
``BENCH_STREAM_OUT``) and the benchmark doubles as the scale-out
acceptance gate: the 100x streamed run must stay within
``rss_limit`` (2x) of the reference run's peak RSS while replaying
~100x the measured references.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

OUT = os.environ.get("BENCH_STREAM_OUT", "BENCH_stream.json")
SCALE_X = int(os.environ.get("BENCH_STREAM_SCALE_X", "100"))
RSS_LIMIT = 2.0

#: The tracestore's reference workload: Settings.paper() uniprocessor.
REF = dict(ncpus=1, scale=32, txns=400, seed=7)

CHILD = r"""
import json, resource, sys, time

mode, txns = sys.argv[1], int(sys.argv[2])
from repro.core.machine import MachineConfig
from repro.core.system import simulate

machine = MachineConfig(label="bench-stream", ncpus=1)
start = time.perf_counter()
if mode == "materialized":
    from repro.trace.generator import build_trace

    trace = build_trace(ncpus=1, scale=32, txns=txns, seed=7)
    result = simulate(machine, trace, engine="fast")
    quanta = len(trace.quanta)
    refs = sum(len(q.refs) for q in trace.quanta)
    measured = trace.measured_refs
else:
    from repro.trace.generator import stream_trace

    trace = stream_trace(ncpus=1, scale=32, txns=txns, seed=7)
    result = simulate(machine, trace, engine="fast")
    quanta = trace.quanta_seen
    refs = trace.refs_seen
    measured = trace.measured_refs
print(json.dumps({
    "mode": mode,
    "txns": txns,
    "quanta": quanta,
    "refs": refs,
    "measured_refs": measured,
    "cycles": result.breakdown.total,
    "wall_seconds": round(time.perf_counter() - start, 3),
    "maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
}))
"""


def _measure(mode: str, txns: int) -> dict:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", CHILD, mode, str(txns)],
        check=True, capture_output=True, text=True, env=env,
    )
    return json.loads(out.stdout)


def test_bench_stream_flat_rss(benchmark):
    reference = benchmark.pedantic(
        lambda: _measure("materialized", REF["txns"]), rounds=1,
        iterations=1,
    )
    streamed = _measure("streamed", REF["txns"] * SCALE_X)

    rss_ratio = streamed["maxrss_kb"] / max(1, reference["maxrss_kb"])
    refs_ratio = (streamed["measured_refs"]
                  / max(1, reference["measured_refs"]))
    payload = {
        "reference": reference,
        "streamed": streamed,
        "scale_x": SCALE_X,
        "rss_ratio": round(rss_ratio, 3),
        "rss_limit": RSS_LIMIT,
        "measured_refs_ratio": round(refs_ratio, 2),
    }
    with open(OUT, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)

    # The acceptance gate: ~100x the measured references at flat RSS.
    assert refs_ratio >= 0.9 * SCALE_X, payload
    assert rss_ratio <= RSS_LIMIT, payload
