"""Observability overhead benchmark: the zero-overhead contract.

Replays the fig5 uniprocessor sweep (the same nine off-chip L2
geometries ``test_bench_vector`` times) through the vectorized engine
twice — once with observability disabled (the default null tracer and
registry: what every plain figure run pays) and once with a live
tracer *and* metrics registry installed — and records both timings to
``BENCH_obs.json`` (override with ``BENCH_OBS_OUT``).

Two numbers matter:

* ``disabled_vs_baseline`` — disabled-observability seconds against
  the ``vectorized_seconds`` recorded in ``BENCH_vector.json`` before
  the instrumentation existed.  This is the contract the hot loops
  must honour: observability *off* may cost less than
  ``OVERHEAD_LIMIT`` (5%) over the uninstrumented engine, because a
  disabled site is one attribute lookup / one ``is not None`` test.
  Asserted here and by CI against the written payload.
* ``enabled_overhead`` — enabled vs disabled, recorded for the DESIGN
  notes (spans are per-phase aggregates, so even enabled runs stay
  cheap); not asserted, it is allowed to grow with instrumentation.

Measurement protocol matches ``test_bench_vector``: one untimed
warmup round per mode, then the per-config minimum over ``ROUNDS``
timed rounds.  The enabled run doubles as a value-identity check.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.system import System
from repro.experiments import offchip
from repro.experiments.common import get_trace
from repro.obs import MetricsRegistry, Tracer, use_metrics, use_tracer

OUT = os.environ.get("BENCH_OBS_OUT", "BENCH_obs.json")
BASELINE = os.environ.get("BENCH_VECTOR_OUT", "BENCH_vector.json")
ROUNDS = 3
OVERHEAD_LIMIT = 1.05


def _replay(machine, trace):
    start = time.perf_counter()
    result = System(machine, engine="vectorized").run(trace)
    return time.perf_counter() - start, result


def _sweep(configs, trace):
    """Min-of-rounds seconds per config, plus the last results."""
    best, results = {}, {}
    for label, machine in configs:  # untimed warmup round
        _replay(machine, trace)
    for _ in range(ROUNDS):
        for label, machine in configs:
            seconds, result = _replay(machine, trace)
            prev = best.get(label)
            if prev is None or seconds < prev:
                best[label] = seconds
            results[label] = result
    return best, results


def test_bench_observability_overhead(settings, warmed_traces):
    trace = get_trace(1, settings)
    configs = offchip.sweep_configs(1, settings.scale)

    disabled_best, disabled_results = _sweep(configs, trace)

    tracer = Tracer()
    registry = MetricsRegistry()
    with use_tracer(tracer), use_metrics(registry):
        enabled_best, enabled_results = _sweep(configs, trace)

    # Observational contract: tracing+metrics change no simulated value.
    for label, _ in configs:
        assert (enabled_results[label].to_dict()
                == disabled_results[label].to_dict()), label
    assert tracer.spans, "enabled run recorded no spans"

    disabled_total = sum(disabled_best.values())
    enabled_total = sum(enabled_best.values())

    baseline_seconds = None
    if os.path.exists(BASELINE):
        with open(BASELINE, encoding="utf-8") as fh:
            baseline_seconds = json.load(fh).get("vectorized_seconds")

    payload = {
        "figure": "fig5",
        "engine": "vectorized",
        "settings": "paper",
        "cpu_count": os.cpu_count(),
        "rounds": ROUNDS,
        "trace_refs": trace.total_refs,
        "disabled_seconds": round(disabled_total, 4),
        "enabled_seconds": round(enabled_total, 4),
        "enabled_overhead": round(enabled_total / disabled_total, 4),
        "baseline_seconds": baseline_seconds,
        "disabled_vs_baseline": (
            round(disabled_total / baseline_seconds, 4)
            if baseline_seconds else None
        ),
        "overhead_limit": OVERHEAD_LIMIT,
    }
    with open(OUT, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)

    if baseline_seconds:
        ratio = disabled_total / baseline_seconds
        assert ratio < OVERHEAD_LIMIT, (
            f"observability-disabled fig5 sweep {disabled_total:.3f}s is "
            f"{ratio:.3f}x the {baseline_seconds:.3f}s pre-instrumentation "
            f"baseline (limit {OVERHEAD_LIMIT}x)"
        )
