"""Benchmark fixtures: paper-sized settings with pre-built traces.

The per-figure benchmarks time the *simulation* of each figure, not
workload generation, so the shared traces are built once here.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import Settings, clear_trace_cache, get_trace

#: Paper-run settings used by the benchmark harness.
SETTINGS = Settings.paper()


@pytest.fixture(scope="session")
def settings():
    return SETTINGS


@pytest.fixture(scope="session")
def warmed_traces(settings):
    """Build both traces up front so figure benches time simulation."""
    uni = get_trace(1, settings)
    mp = get_trace(8, settings)
    yield uni, mp
    clear_trace_cache()
