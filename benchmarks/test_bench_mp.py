"""Staged-pipeline benchmark: scalar vs batched MP replay on fig6+fig8.

Replays the fig6 off-chip sweep and the fig8 on-chip sweep (16
configs against the paper-sized 8-CPU OLTP trace) with the scalar
``fast`` engine and the staged ``vectorized-mp`` pipeline, recording
steady-state timings to ``BENCH_mp.json`` (override with
``BENCH_MP_OUT``): per-config and total seconds per engine plus the
aggregate speedup.

Measurement protocol: configs are the *outer* loop, with one untimed
warmup replay per engine and then ``ROUNDS`` timed replays per engine
taking the per-config minimum.  Config-major ordering matters for
fidelity on both sides — it keeps the census' derived projections
(per-geometry set indices, effective flags) hot across a config's
rounds, exactly as a campaign grid replaying one trace would see —
and interleaving the two engines within each round exposes them to
the same scheduler and frequency drift.

The run doubles as the acceptance check for the pipeline: every
config's ``RunResult`` must be value-identical across engines, and
the recorded aggregate speedup is asserted against the ≥3x target.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.system import System
from repro.experiments import offchip, onchip
from repro.experiments.common import get_trace

OUT = os.environ.get("BENCH_MP_OUT", "BENCH_mp.json")
ROUNDS = 3
TARGET_SPEEDUP = 3.0
ENGINES = ("fast", "vectorized-mp")


def _replay(machine, trace, engine):
    start = time.perf_counter()
    result = System(machine, engine=engine).run(trace)
    return time.perf_counter() - start, result


def test_bench_mp_fig6_fig8_sweeps(settings, warmed_traces):
    trace = get_trace(8, settings)
    configs = [
        (f"fig6:{label}", machine)
        for label, machine in offchip.sweep_configs(8, settings.scale)
    ] + [
        (f"fig8:{label}", machine)
        for label, machine in onchip._configs(8, settings.scale)
    ]

    best = {engine: {} for engine in ENGINES}
    for key, machine in configs:
        for engine in ENGINES:  # untimed warmup replay
            _replay(machine, trace, engine)
        results = {}
        for _ in range(ROUNDS):
            for engine in ENGINES:
                seconds, result = _replay(machine, trace, engine)
                prev = best[engine].get(key)
                if prev is None or seconds < prev:
                    best[engine][key] = seconds
                results[engine] = result
        # Value-identity across engines, for every config in the sweeps.
        assert (results["vectorized-mp"].to_dict()
                == results["fast"].to_dict()), key

    fast_total = sum(best["fast"].values())
    vmp_total = sum(best["vectorized-mp"].values())
    speedup = fast_total / vmp_total
    payload = {
        "figure": "fig6+fig8",
        "settings": "paper",
        "cpu_count": os.cpu_count(),
        "rounds": ROUNDS,
        "trace_refs": trace.total_refs,
        "fast_seconds": round(fast_total, 4),
        "vectorized_mp_seconds": round(vmp_total, 4),
        "speedup": round(speedup, 3),
        "target_speedup": TARGET_SPEEDUP,
        "per_config": {
            key: {
                "fast_seconds": round(best["fast"][key], 4),
                "vectorized_mp_seconds": round(
                    best["vectorized-mp"][key], 4
                ),
                "speedup": round(
                    best["fast"][key] / best["vectorized-mp"][key], 3
                ),
            }
            for key, _ in configs
        },
    }
    with open(OUT, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)

    assert speedup >= TARGET_SPEEDUP, (
        f"vectorized-mp engine {speedup:.2f}x < {TARGET_SPEEDUP}x target "
        f"(fast {fast_total:.2f}s, vectorized-mp {vmp_total:.2f}s)"
    )
