"""Vectorized-kernel benchmark: scalar vs numpy replay on Figure 5.

Replays the fig5 uniprocessor sweep (9 off-chip L2 geometries against
the paper-sized 1-CPU OLTP trace) once per engine and records
steady-state timings to ``BENCH_vector.json`` (override with
``BENCH_VECTOR_OUT``): per-config and total seconds for the scalar
``fast`` path and the ``vectorized`` path, plus the aggregate speedup.

Measurement protocol: one untimed warmup round per engine (builds the
trace views the vectorized kernel caches, faults everything hot), then
``ROUNDS`` timed rounds taking the per-config *minimum* — the
steady-state cost a long campaign actually pays, insulated from
one-off cache effects and scheduler noise.

The run doubles as the acceptance check for the kernel: every config's
``RunResult`` must be value-identical across engines, and the recorded
aggregate speedup is asserted against the ≥5x target.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.system import System
from repro.experiments import offchip
from repro.experiments.common import get_trace

OUT = os.environ.get("BENCH_VECTOR_OUT", "BENCH_vector.json")
ROUNDS = 3
TARGET_SPEEDUP = 5.0


def _replay(machine, trace, engine):
    start = time.perf_counter()
    result = System(machine, engine=engine).run(trace)
    return time.perf_counter() - start, result


def test_bench_vectorized_fig5_sweep(settings, warmed_traces):
    trace = get_trace(1, settings)
    configs = offchip.sweep_configs(1, settings.scale)

    best = {"fast": {}, "vectorized": {}}
    results = {"fast": {}, "vectorized": {}}
    for engine in best:
        for label, machine in configs:  # untimed warmup round
            _replay(machine, trace, engine)
        for _ in range(ROUNDS):
            for label, machine in configs:
                seconds, result = _replay(machine, trace, engine)
                prev = best[engine].get(label)
                if prev is None or seconds < prev:
                    best[engine][label] = seconds
                results[engine][label] = result

    # Value-identity across engines, for every config in the sweep.
    for label, _ in configs:
        assert (results["vectorized"][label].to_dict()
                == results["fast"][label].to_dict()), label

    fast_total = sum(best["fast"].values())
    vector_total = sum(best["vectorized"].values())
    speedup = fast_total / vector_total
    payload = {
        "figure": "fig5",
        "settings": "paper",
        "cpu_count": os.cpu_count(),
        "rounds": ROUNDS,
        "trace_refs": trace.total_refs,
        "fast_seconds": round(fast_total, 4),
        "vectorized_seconds": round(vector_total, 4),
        "speedup": round(speedup, 3),
        "target_speedup": TARGET_SPEEDUP,
        "per_config": {
            label: {
                "fast_seconds": round(best["fast"][label], 4),
                "vectorized_seconds": round(best["vectorized"][label], 4),
                "speedup": round(
                    best["fast"][label] / best["vectorized"][label], 3
                ),
            }
            for label, _ in configs
        },
    }
    with open(OUT, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)

    assert speedup >= TARGET_SPEEDUP, (
        f"vectorized engine {speedup:.2f}x < {TARGET_SPEEDUP}x target "
        f"(fast {fast_total:.2f}s, vectorized {vector_total:.2f}s)"
    )
