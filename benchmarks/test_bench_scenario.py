"""Scenario-replay benchmark: non-flat topologies vs their flat twins.

Replays the non-flat scenario points (hardware islands, chiplet+RAC)
and, for each, a *flat twin* — the identical machine with the uniform
topology — on both MP engines, recording steady-state timings to
``BENCH_scenario.json`` (override with ``BENCH_SCENARIO_OUT``).

Non-flat topologies push the staged pipeline into its stream mode and
send every remote miss through the per-hop latency composition, so
this bench is the guard on what scenarios *cost*: per-engine replay
throughput must stay above a conservative refs/second floor, and the
topology arithmetic must not balloon replay time past
``OVERHEAD_LIMIT``× the flat twin.  (A pipeline speedup floor lives
in ``test_bench_mp.py``; stream mode makes no speedup promise, so
none is asserted here.)

Measurement protocol matches ``test_bench_mp.py``: config-major, one
untimed warmup replay per engine, then ``ROUNDS`` timed replays per
engine taking the minimum.  Both scenarios run the paper's baseline
workload, so every cell replays the one shared 8-CPU trace and the
flat-vs-nonflat ratio isolates pure topology-routing cost.

The run doubles as the value-identity acceptance check for the
non-flat path: every cell's ``RunResult`` must be identical across
engines, and each non-flat cell must match its flat twin's miss
taxonomy exactly (topology moves cycles, never misses).
"""

from __future__ import annotations

import json
import os
import time

from repro.core.system import System
from repro.experiments.common import get_trace
from repro.scenario import get_scenario
from repro.scenario.topology import UNIFORM

OUT = os.environ.get("BENCH_SCENARIO_OUT", "BENCH_scenario.json")
ROUNDS = 3
ENGINES = ("fast", "vectorized-mp")
#: Worst-cell replay throughput floor (measured refs per second); the
#: dev box does ~400k on the slowest cell, CI runners get 4x headroom.
MIN_REFS_PER_SEC = 100_000
#: Non-flat replay may cost at most this much over its flat twin.  The
#: worst cell is islands on the staged pipeline, where the flat twin
#: runs batch mode but the non-flat point must stream (~2.4x on the
#: dev box).
OVERHEAD_LIMIT = 4.0
SCENARIOS = ("islands-mp8", "chiplet-mp8")


def _replay(machine, trace, engine):
    start = time.perf_counter()
    result = System(machine, engine=engine).run(trace)
    return time.perf_counter() - start, result


def test_bench_scenario_topologies(settings, warmed_traces):
    trace = get_trace(8, settings)
    cells = []
    for name in SCENARIOS:
        scenario = get_scenario(name)
        assert scenario.workload.is_baseline  # one shared trace
        label, machine = scenario.machines(settings.scale)[-1]
        cells.append((name, machine, machine.with_(topology=UNIFORM)))

    per_cell = {}
    for name, machine, flat_twin in cells:
        best = {"scenario": {}, "flat": {}}
        results = {"scenario": {}, "flat": {}}
        for variant, config in (("scenario", machine), ("flat", flat_twin)):
            for engine in ENGINES:  # untimed warmup replay
                _replay(config, trace, engine)
            for _ in range(ROUNDS):
                for engine in ENGINES:
                    seconds, result = _replay(config, trace, engine)
                    prev = best[variant].get(engine)
                    if prev is None or seconds < prev:
                        best[variant][engine] = seconds
                    results[variant][engine] = result
        # Value identity across engines, flat and non-flat alike.
        for variant in ("scenario", "flat"):
            assert (results[variant]["vectorized-mp"].to_dict()
                    == results[variant]["fast"].to_dict()), (name, variant)
        # Topology moves cycles, never misses.
        assert (results["scenario"]["fast"].misses.as_dict()
                == results["flat"]["fast"].misses.as_dict()), name
        assert (results["scenario"]["fast"].breakdown.total
                > results["flat"]["fast"].breakdown.total), name
        per_cell[name] = {
            engine: {
                "seconds": round(best["scenario"][engine], 4),
                "flat_seconds": round(best["flat"][engine], 4),
                "refs_per_sec": round(
                    trace.measured_refs / best["scenario"][engine]
                ),
                "overhead_vs_flat": round(
                    best["scenario"][engine] / best["flat"][engine], 3
                ),
            }
            for engine in ENGINES
        }

    worst_rps = min(cell[engine]["refs_per_sec"]
                    for cell in per_cell.values() for engine in ENGINES)
    worst_overhead = max(cell[engine]["overhead_vs_flat"]
                         for cell in per_cell.values() for engine in ENGINES)
    payload = {
        "scenarios": list(SCENARIOS),
        "settings": "paper",
        "cpu_count": os.cpu_count(),
        "rounds": ROUNDS,
        "trace_refs": trace.total_refs,
        "measured_refs": trace.measured_refs,
        "per_cell": per_cell,
        "worst_refs_per_sec": worst_rps,
        "min_refs_per_sec": MIN_REFS_PER_SEC,
        "worst_overhead_vs_flat": worst_overhead,
        "overhead_limit": OVERHEAD_LIMIT,
    }
    with open(OUT, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)

    assert worst_rps >= MIN_REFS_PER_SEC, payload
    assert worst_overhead <= OVERHEAD_LIMIT, payload
