"""Benchmarks for the ablation studies (extensions beyond the paper)."""

from __future__ import annotations

from repro.experiments.ablations import (
    cmp_study,
    latency_sensitivity,
    scaling_study,
    tlb_study,
    victim_buffer_study,
)


def once(benchmark, fn):
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def test_bench_ablation_victim_buffer(benchmark, settings, warmed_traces):
    study = once(benchmark, lambda: victim_buffer_study(settings))
    by_label = dict(study.rows)
    assert by_label["2M1w +VB16"].misses.total < by_label["2M1w"].misses.total
    assert by_label["2M8w"].misses.total < by_label["2M1w +VB64"].misses.total


def test_bench_ablation_cmp(benchmark, settings):
    study = once(benchmark, lambda: cmp_study(settings))
    flat, dual = study.rows[0][1], study.rows[1][1]
    assert abs(dual.cycles_per_txn / flat.cycles_per_txn - 1.0) < 0.2


def test_bench_ablation_latency_sensitivity(benchmark, settings, warmed_traces):
    def run():
        return latency_sensitivity(settings, 8), latency_sensitivity(settings, 1)

    mp, uni = once(benchmark, run)
    assert dict(mp.deltas)["remote_dirty"] > dict(mp.deltas)["local"]
    assert dict(uni.deltas)["l2_hit"] > dict(uni.deltas)["local"]


def test_bench_ablation_scaling(benchmark):
    study = once(benchmark, lambda: scaling_study(scales=(64, 48), txns=200))
    assert all(speedup > 1.2 for _, speedup, _ in study.rows)
    assert all(ratio < 1.0 for _, _, ratio in study.rows)


def test_bench_ablation_tlb_reach(benchmark, settings, warmed_traces):
    study = once(benchmark, lambda: tlb_study(settings))
    slowdowns = {entries: s for entries, s, _ in study.rows}
    assert slowdowns[64] > slowdowns[256] >= slowdowns[1024] >= 1.0
