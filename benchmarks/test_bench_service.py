"""Service-mode throughput benchmark: warm submissions over HTTP.

Starts an in-process job service behind a real HTTP server, primes the
Figure 5 corpus (each job simulates exactly once), then drives ≥1000
warm submissions at concurrency 64 through the load generator.  Warm
submissions answer from the in-memory entry table, so this measures
the service's HTTP + dedup round-trip, not simulation.

Asserts warm throughput stays at or above ``BENCH_SERVICE_MIN_RPS``
(default 200 jobs/s) and dumps ``BENCH_service.json`` (override with
``BENCH_SERVICE_OUT``) with the latency distribution.
"""

from __future__ import annotations

import json
import os
import threading

from repro.experiments.common import Settings
from repro.runner.tracestore import TraceStore
from repro.service import JobService, ServiceHTTPServer, figure_jobs
from repro.service.loadgen import generate

OUT = os.environ.get("BENCH_SERVICE_OUT", "BENCH_service.json")
MIN_RPS = float(os.environ.get("BENCH_SERVICE_MIN_RPS", "200"))
REQUESTS = int(os.environ.get("BENCH_SERVICE_REQUESTS", "1000"))
CONCURRENCY = 64
WORKERS = 4

#: Small corpus sizes: priming is 9 quick simulations; the measured
#: phase never simulates at all.
BENCH_SETTINGS = Settings(scale=256, uni_txns=15, mp_txns=30, seed=3)


def test_bench_warm_submission_throughput(tmp_path_factory):
    store = TraceStore(
        spill_dir=str(tmp_path_factory.mktemp("bench-service-traces")))
    service = JobService(workers=WORKERS, trace_store=store)
    service.start()
    httpd = ServiceHTTPServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        warm = figure_jobs(("fig5",), BENCH_SETTINGS)
        report = generate(
            f"http://127.0.0.1:{httpd.port}", warm, [],
            requests=REQUESTS, concurrency=CONCURRENCY,
            mix=(1, 0), poll_timeout=600.0, prime=True,
        )
    finally:
        httpd.shutdown()
        thread.join(timeout=10)
        httpd.server_close()
        service.close(drain=False)

    assert report["ok"], report
    assert report["transport_errors"] == 0
    done = report["phases"]["submit_done"]["warm"]
    assert done["count"] == REQUESTS
    throughput = report["throughput_jobs_per_sec"]

    payload = {
        "settings": "fig5 corpus, scale 256",
        "requests": REQUESTS,
        "concurrency": CONCURRENCY,
        "service_workers": WORKERS,
        "warm_corpus_jobs": len(warm),
        "cpu_count": os.cpu_count(),
        "elapsed_seconds": round(report["elapsed_seconds"], 4),
        "throughput_jobs_per_sec": round(throughput, 2),
        "submit_accept_p50_ms": round(
            report["phases"]["submit_accept"]["warm"]["p50"] * 1000, 3),
        "submit_done_p50_ms": round(done["p50"] * 1000, 3),
        "submit_done_p90_ms": round(done["p90"] * 1000, 3),
        "submit_done_p99_ms": round(done["p99"] * 1000, 3),
        "submit_done_max_ms": round(done["max"] * 1000, 3),
        "min_jobs_per_sec": MIN_RPS,
    }
    with open(OUT, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)

    assert throughput >= MIN_RPS, (
        f"warm throughput {throughput:.1f} jobs/s is below the "
        f"{MIN_RPS:.0f} jobs/s floor (p99 {done['p99'] * 1000:.1f} ms)"
    )
