"""Benchmark harness: regenerate every paper figure at paper settings.

Each benchmark runs its figure driver once (``pedantic`` with a single
round — these are minutes-scale simulations, not microbenchmarks) and
then asserts the figure's headline shape, so a benchmark run doubles
as a full reproduction check.  Figure 3 is the static latency table.

Every figure's wall-clock and normalized execution times (plus the
replay engine each bar resolved to) are persisted to
``BENCH_figures.json`` (override with ``BENCH_FIGURES_OUT``) so the
performance trajectory of the reproduction itself is tracked run over
run, the way ``BENCH_campaign.json`` tracks the runner.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.experiments import fig3_latencies, integration, offchip, onchip, rac
from repro.experiments import ooo as ooo_experiment
from repro.experiments.common import Figure

OUT = os.environ.get("BENCH_FIGURES_OUT", "BENCH_figures.json")


@pytest.fixture(scope="module")
def figures_report():
    """Collects one entry per figure; written out after the module."""
    report = {}
    yield report
    payload = {
        "settings": "paper",
        "cpu_count": os.cpu_count(),
        "total_wall_seconds": round(
            sum(f["wall_seconds"] for f in report.values()), 3
        ),
        "figures": report,
    }
    with open(OUT, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)


def _rows(result) -> list:
    """Normalized exec-time rows from a Figure or a study of Figures."""
    if isinstance(result, Figure):
        return [
            {
                "label": row.label,
                "time_norm": round(row.time_norm, 3),
                "miss_norm": round(row.miss_norm, 3),
                "engine": row.engine,
            }
            for row in result.rows
        ]
    rows = []
    for attr in ("uni", "mp"):
        fig = getattr(result, attr, None)
        if isinstance(fig, Figure):
            for entry in _rows(fig):
                rows.append({**entry, "half": attr})
    return rows


def once(benchmark, fn, report=None, figure=None):
    start = time.perf_counter()
    result = benchmark.pedantic(fn, rounds=1, iterations=1)
    if report is not None:
        report[figure] = {
            "wall_seconds": round(time.perf_counter() - start, 3),
            "rows": _rows(result),
        }
    return result


def test_bench_fig3_latency_table(benchmark, figures_report):
    table = once(benchmark, fig3_latencies.render, figures_report, "fig3")
    assert "Conservative Base" in table
    ratios = fig3_latencies.reduction_ratios()
    assert round(ratios["l2_hit"], 2) == 1.67
    assert round(ratios["remote_dirty"], 2) == 1.38


def test_bench_fig5_offchip_uniprocessor(benchmark, settings, warmed_traces,
                                         figures_report):
    fig = once(benchmark, lambda: offchip.run(1, settings),
               figures_report, "fig5")
    assert fig.row("2M4w").miss_norm < fig.row("8M1w").miss_norm
    assert fig.row("8M4w").miss_norm < 10
    for s in (1, 2, 4, 8):
        assert fig.row(f"{s}M4w").miss_norm < fig.row(f"{s}M1w").miss_norm


def test_bench_fig6_offchip_multiprocessor(benchmark, settings, warmed_traces,
                                           figures_report):
    fig = once(benchmark, lambda: offchip.run(8, settings),
               figures_report, "fig6")
    assert fig.row("8M4w").result.misses.dirty_share > 0.5
    assert (
        fig.row("8M4w").result.misses.d_remote_dirty
        > fig.row("1M1w").result.misses.d_remote_dirty
    )
    assert fig.row("Cons 8M4w").time_norm > fig.row("8M4w").time_norm


def test_bench_fig7_onchip_uniprocessor(benchmark, settings, warmed_traces,
                                        figures_report):
    fig = once(benchmark, lambda: onchip.run(1, settings),
               figures_report, "fig7")
    assert fig.speedup("2M8w") > 1.3
    assert fig.row("2M8w").miss_norm < 100
    assert fig.row("1M8w").miss_norm > 100
    assert fig.row("8M8w DRAM").time_norm > fig.row("2M8w").time_norm


def test_bench_fig8_onchip_multiprocessor(benchmark, settings, warmed_traces,
                                          figures_report):
    fig = once(benchmark, lambda: onchip.run(8, settings),
               figures_report, "fig8")
    gain = fig.speedup("2M8w")
    assert 1.05 < gain < 1.6
    assert fig.row("8M8w DRAM").miss_norm == min(r.miss_norm for r in fig.rows)


def test_bench_fig10_integration_ladder(benchmark, settings, warmed_traces,
                                        figures_report):
    study = once(benchmark, lambda: integration.run(settings),
                 figures_report, "fig10")
    assert 1.25 < study.uni_full_speedup < 1.8
    assert 1.3 < study.mp_full_speedup < 1.8
    assert 1.4 < study.conservative_speedup < 1.8
    assert abs(study.uni.speedup("L2+MC", over="L2") - 1.0) < 0.08


def test_bench_fig11_rac_miss_mix(benchmark, settings, warmed_traces,
                                  figures_report):
    study = once(benchmark, lambda: rac.run_miss_study(settings),
                 figures_report, "fig11")
    assert study.rac_no_repl.misses.total == study.no_rac_no_repl.misses.total
    assert study.hit_rate_no_repl > study.hit_rate_repl
    assert (
        study.rac_no_repl.misses.d_remote_dirty
        > study.no_rac_no_repl.misses.d_remote_dirty
    )


def test_bench_fig12_rac_performance(benchmark, settings, warmed_traces,
                                     figures_report):
    fig = once(benchmark, lambda: rac.run_perf_study(settings),
               figures_report, "fig12")
    assert fig.row("1M4w RAC").time_norm < 100  # small gain...
    assert fig.row("1.25M4w NoRAC").time_norm < fig.row("1M4w RAC").time_norm
    assert abs(fig.speedup("2M8w RAC", over="2M8w NoRAC") - 1.0) < 0.05


def test_bench_fig13_out_of_order(benchmark, settings, warmed_traces,
                                  figures_report):
    study = once(benchmark, lambda: ooo_experiment.run(settings),
                 figures_report, "fig13")
    assert 1.2 < study.uni_ooo_gain < 1.8
    assert 1.1 < study.mp_ooo_gain < 1.6
    ratios = study.step_ratios()
    assert abs(ratios["mp"]["All ooo"] / ratios["mp"]["All in-order"] - 1) < 0.15
