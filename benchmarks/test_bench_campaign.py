"""Campaign benchmark: serial vs parallel workers, cold vs warm cache.

Runs the full figure set through ``run_campaign`` four ways — serial
cold, serial warm, 4-worker cold, 4-worker warm — at quick sizes, and
dumps a machine-readable ``BENCH_campaign.json`` (override the path
with ``BENCH_CAMPAIGN_OUT``).  The payload carries each mode's
telemetry, including per-figure wall-clock and per-job records, plus
the headline speedup ratios.

Note the parallel speedup is only meaningful on a multi-core host; on
a single-core CI runner the interesting numbers are the warm-cache
ones (a warm campaign should be orders of magnitude faster).
"""

from __future__ import annotations

import json
import os
import time

from repro.experiments.campaign import run_campaign
from repro.experiments.cli import FIGURES
from repro.experiments.common import Settings, clear_trace_cache

OUT = os.environ.get("BENCH_CAMPAIGN_OUT", "BENCH_campaign.json")


def _campaign(cache_dir: str, jobs: int):
    start = time.perf_counter()
    report = run_campaign(FIGURES, Settings.quick(), jobs=jobs,
                          cache_dir=cache_dir, progress=False)
    wall = time.perf_counter() - start
    telemetry = report.telemetry.to_dict()
    telemetry["wall_seconds"] = round(wall, 3)
    return report, telemetry


def test_bench_campaign_matrix(benchmark, tmp_path_factory):
    serial_dir = str(tmp_path_factory.mktemp("bench-serial"))
    parallel_dir = str(tmp_path_factory.mktemp("bench-parallel"))

    serial_report, serial = benchmark.pedantic(
        lambda: _campaign(serial_dir, 1), rounds=1, iterations=1
    )
    _, serial_warm = _campaign(serial_dir, 1)
    clear_trace_cache()
    parallel_report, parallel = _campaign(parallel_dir, 4)
    _, parallel_warm = _campaign(parallel_dir, 4)

    # The benchmark doubles as a correctness check, like the figure
    # benches: parallel output matches serial, warm runs simulate nothing.
    assert parallel_report.figures == serial_report.figures
    assert serial_warm["simulated"] == 0
    assert parallel_warm["simulated"] == 0

    wall = lambda t: max(t["wall_seconds"], 1e-9)  # noqa: E731
    payload = {
        "settings": "quick",
        "figures": list(FIGURES),
        "cpu_count": os.cpu_count(),
        "serial_cold": serial,
        "serial_warm": serial_warm,
        "parallel4_cold": parallel,
        "parallel4_warm": parallel_warm,
        "parallel_speedup_cold": round(wall(serial) / wall(parallel), 3),
        "warm_speedup_serial": round(wall(serial) / wall(serial_warm), 3),
    }
    with open(OUT, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
