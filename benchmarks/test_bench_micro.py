"""Microbenchmarks for the simulator's performance-critical components.

These track the throughput of the substrate itself (cache operations,
protocol transactions, engine transactions, trace generation, replay),
so regressions in simulator speed are visible independently of the
figure-level benchmarks.
"""

from __future__ import annotations

import random

from repro.coherence.homemap import HomeMap
from repro.coherence.protocol import DirectoryProtocol
from repro.core.machine import MachineConfig
from repro.core.system import simulate
from repro.memsys.cache import SetAssocCache
from repro.memsys.hierarchy import NodeCaches
from repro.oltp.config import WorkloadConfig
from repro.oltp.engine import OracleEngine
from repro.trace.generator import build_trace


def test_bench_cache_access_throughput(benchmark):
    rng = random.Random(1)
    lines = [rng.randrange(4096) for _ in range(20_000)]
    writes = [rng.random() < 0.3 for _ in range(20_000)]

    def run():
        cache = SetAssocCache(64 * 1024, 4)
        access = cache.access
        for line, write in zip(lines, writes):
            access(line, write)
        return cache.hits

    hits = benchmark(run)
    assert hits > 0


def test_bench_protocol_throughput(benchmark):
    rng = random.Random(2)
    ops = [(rng.randrange(4), rng.randrange(512), rng.random() < 0.4)
           for _ in range(5_000)]

    def run():
        nodes = [NodeCaches(16 * 1024, 2, l1_size=1024, l1_assoc=2, node_id=i)
                 for i in range(4)]
        protocol = DirectoryProtocol(HomeMap(4, 256), nodes)
        for node, line, write in ops:
            result = nodes[node].access(line, write, False)
            if result.victim is not None:
                protocol.handle_eviction(node, result.victim, result.victim_dirty)
            if result.level.value == "miss":
                protocol.service_miss(node, line, write, False)
        return protocol.interventions

    benchmark(run)


def test_bench_engine_transaction_rate(benchmark):
    def run():
        config = WorkloadConfig.build(ncpus=1, scale=64, seed=5)
        engine = OracleEngine(config)
        engine.prewarm()
        engine.run(200)
        return engine.stats.committed

    committed = benchmark(run)
    assert committed == 200


def test_bench_trace_generation(benchmark):
    def run():
        return build_trace(ncpus=1, scale=64, txns=100, warmup_txns=50, seed=5)

    trace = benchmark(run)
    assert trace.total_refs > 0


def test_bench_replay_throughput(benchmark):
    trace = build_trace(ncpus=1, scale=64, txns=150, warmup_txns=50, seed=5)
    machine = MachineConfig.base(1, scale=64)

    def run():
        return simulate(machine, trace)

    result = benchmark(run)
    assert result.misses.total > 0


def test_bench_mp_replay_throughput(benchmark):
    trace = build_trace(ncpus=8, scale=64, txns=300, warmup_txns=150, seed=5)
    machine = MachineConfig.fully_integrated(8, scale=64)

    def run():
        return simulate(machine, trace)

    result = benchmark(run)
    assert result.misses.remote > 0
